"""Failure injection and edge conditions across the stack."""

from __future__ import annotations

import pytest

from repro.bench.harness import apply_operation, seed_database
from repro.bench.strategies import build_engine
from repro.cache.sketch import CountMinSketch
from repro.core.adcache import AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.errors import StorageError
from repro.lsm.block import BlockHandle
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.generator import WorkloadGenerator, balanced_workload
from repro.workloads.keys import key_of, value_of

OPTS = LSMOptions(memtable_entries=32, entries_per_sstable=64)


class TestZeroBudgets:
    def test_zero_cache_engine_still_correct(self):
        tree = seed_database(500, OPTS)
        engine = build_engine("adcache", tree, cache_bytes=0, seed=1)
        assert engine.get(key_of(5)) == value_of(5)
        assert engine.scan(key_of(10), 4)[0][0] == key_of(10)

    def test_boundary_pinned_to_extremes(self):
        tree = seed_database(500, OPTS)
        config = AdCacheConfig(
            total_cache_bytes=256 * 1024,
            initial_range_ratio=0.0,
            window_size=100,
            hidden_dim=16,
            seed=1,
        )
        engine = AdCacheEngine(tree, config)
        assert engine.range_cache.budget_bytes == 0
        for i in range(150):
            engine.get(key_of(i % 500))
        assert engine.get(key_of(3)) == value_of(3)

    def test_cache_smaller_than_one_entry(self):
        tree = seed_database(200, OPTS)
        engine = build_engine("range", tree, cache_bytes=100, seed=1)  # < 1 KB entry
        engine.get(key_of(5))
        engine.get(key_of(5))
        assert len(engine.range_cache) == 0
        assert engine.range_cache.stats.rejections > 0


class TestSketchSaturation:
    def test_decay_storm_stays_consistent(self):
        sketch = CountMinSketch(width=64, depth=2, saturation=4, seed=1)
        for i in range(2000):
            sketch.increment(f"k{i % 10}")
        assert sketch.decays_total > 10
        assert sketch.total >= 0
        assert all(sketch.estimate(f"k{i}") >= 0 for i in range(10))


class TestStorageFaults:
    def test_read_of_compacted_block_raises(self):
        tree = LSMTree(OPTS)
        for i in range(200):
            tree.put(key_of(i), value_of(i))
        tree.flush()
        # Find an sst id that was compacted away.
        dead = None
        all_ids = set(range(1, tree.disk.allocate_sst_id()))
        live = set(tree.disk.live_sst_ids())
        dead_ids = all_ids - live
        assert dead_ids
        dead = next(iter(dead_ids))
        with pytest.raises(StorageError):
            tree.disk.read_block(BlockHandle(dead, 0))

    def test_engine_never_reads_dead_blocks(self):
        """Under heavy churn the engine must never request a block of a
        deleted SSTable (the cache is keyed by id, not re-resolved)."""
        tree = seed_database(1000, OPTS)
        engine = build_engine("adcache", tree, cache_bytes=256 * 1024, seed=1)
        gen = WorkloadGenerator(balanced_workload(1000), seed=2)
        for op in gen.ops(4000):
            apply_operation(engine, op)  # would raise StorageError on a dead read


class TestExtremeWorkloads:
    def test_scan_length_of_one(self):
        tree = seed_database(300, OPTS)
        engine = build_engine("adcache", tree, cache_bytes=128 * 1024, seed=1)
        assert engine.scan(key_of(7), 1) == [(key_of(7), value_of(7))]
        assert engine.scan(key_of(7), 1) == [(key_of(7), value_of(7))]

    def test_scan_at_keyspace_end(self):
        tree = seed_database(300, OPTS)
        engine = build_engine("range", tree, cache_bytes=128 * 1024, seed=1)
        result = engine.scan(key_of(298), 16)
        assert [k for k, _ in result] == [key_of(298), key_of(299)]

    def test_all_deletes_then_reads(self):
        tree = seed_database(100, OPTS)
        engine = build_engine("adcache", tree, cache_bytes=128 * 1024, seed=1)
        for i in range(100):
            engine.delete(key_of(i))
        assert all(engine.get(key_of(i)) is None for i in range(0, 100, 9))
        assert engine.scan(key_of(0), 10) == []

    def test_repeated_resize_thrash_is_safe(self):
        tree = seed_database(500, OPTS)
        engine = build_engine("adcache", tree, cache_bytes=512 * 1024, seed=1)
        for step in range(30):
            budget = (step % 5) * 128 * 1024
            engine.range_cache.resize(budget)
            engine.block_cache.resize(512 * 1024 - budget)
            assert engine.get(key_of(step % 500)) == value_of(step % 500)
            assert engine.range_cache.used_bytes <= engine.range_cache.budget_bytes
