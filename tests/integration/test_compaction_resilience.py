"""The paper's central contrast: block caches suffer compaction
invalidation; result caches do not."""

from __future__ import annotations

from repro.bench.strategies import build_engine
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.keys import key_of, value_of

OPTS = LSMOptions(memtable_entries=32, entries_per_sstable=64)


def seeded_tree(num_keys=2000):
    tree = LSMTree(OPTS)
    tree.bulk_load((key_of(i), value_of(i)) for i in range(num_keys))
    return tree


def warm_then_compact_then_measure(strategy: str):
    """Warm a cache on hot keys, churn writes to force compactions,
    then measure disk reads re-fetching the same hot keys."""
    tree = seeded_tree()
    engine = build_engine(strategy, tree, cache_bytes=512 * 1024, seed=1)
    hot = [key_of(i) for i in range(0, 400, 4)]
    for _ in range(3):
        for key in hot:
            engine.get(key)
    compactions_before = tree.compactor.compactions_total
    # Write churn on a disjoint key range: invalidates physical layout
    # without touching the hot keys' logical values.
    for i in range(1200):
        engine.put(key_of(1000 + i % 800), value_of(1000 + i % 800, 1))
    assert tree.compactor.compactions_total > compactions_before
    reads_before = tree.sst_reads_total
    for key in hot:
        engine.get(key)
    return tree.sst_reads_total - reads_before


class TestCompactionResilience:
    def test_range_cache_survives_compaction(self):
        misses_range = warm_then_compact_then_measure("range")
        assert misses_range == 0  # logical entries untouched by compaction

    def test_block_cache_loses_entries_to_compaction(self):
        misses_block = warm_then_compact_then_measure("block")
        misses_range = warm_then_compact_then_measure("range")
        assert misses_block > misses_range

    def test_kv_cache_also_resilient(self):
        assert warm_then_compact_then_measure("kv") == 0


class TestCorrectnessAcrossCompaction:
    def test_cached_reads_stay_fresh_through_update_churn(self):
        """Values read through any strategy match ground truth even as
        compaction rewrites files and caches serve hits."""
        ground_truth = {}
        tree = seeded_tree()
        engine = build_engine("adcache", tree, cache_bytes=256 * 1024, seed=1)
        for i in range(2000):
            ground_truth[key_of(i)] = value_of(i)
        from random import Random

        rng = Random(9)
        for step in range(3000):
            i = rng.randrange(2000)
            key = key_of(i)
            action = rng.random()
            if action < 0.4:
                value = value_of(i, step)
                engine.put(key, value)
                ground_truth[key] = value
            elif action < 0.8:
                assert engine.get(key) == ground_truth.get(key), (step, key)
            else:
                start_i = min(i, 2000 - 8)
                result = engine.scan(key_of(start_i), 8)
                keys_sorted = sorted(ground_truth)
                expected = [
                    (k, ground_truth[k])
                    for k in keys_sorted
                    if k >= key_of(start_i)
                ][:8]
                assert result == expected, (step, start_i)
