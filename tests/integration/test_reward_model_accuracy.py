"""The paper's reward-model accuracy claim.

Section 3.5: the estimated hit rate "can be used to calculate the hit
rate for both block cache and range cache ... Its accuracy has been
validated in the context of block cache" (h == h_estimate when IO is
observable).  These tests validate the same identity in this
implementation: for point-lookup workloads with negligible bloom FPR,
the I/O-estimate formula's no-cache baseline matches the actually
measured no-cache I/O, and h_estimate tracks the block cache's true
hit rate.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import estimated_hit_rate, run_workload, seed_database
from repro.bench.strategies import build_engine
from repro.core.engine import KVEngine
from repro.lsm.options import LSMOptions
from repro.rl.reward import estimate_no_cache_io
from repro.workloads.generator import WorkloadGenerator, point_lookup_workload

OPTS = LSMOptions(memtable_entries=32, entries_per_sstable=64)
NUM_KEYS = 3000


class TestNoCacheBaseline:
    def test_point_lookup_io_matches_formula(self):
        """With no cache, measured disk I/O ~= p * (1 + FPR)."""
        tree = seed_database(NUM_KEYS, OPTS)
        engine = KVEngine(tree)
        gen = WorkloadGenerator(point_lookup_workload(NUM_KEYS), seed=3)
        result = run_workload(engine, gen, num_ops=2000, name="nocache")
        predicted = estimate_no_cache_io(
            points=2000, scans=0, avg_scan_length=0,
            entries_per_block=4, num_levels=tree.num_levels,
            level0_max_runs=OPTS.level0_stop_writes_trigger,
        )
        # Within 10%: the slack is bloom false positives (extra reads)
        # and keys resolved in upper levels (fewer reads).
        assert result.io_miss == pytest.approx(predicted, rel=0.10)

    def test_h_estimate_near_zero_without_cache(self):
        tree = seed_database(NUM_KEYS, OPTS)
        engine = KVEngine(tree)
        gen = WorkloadGenerator(point_lookup_workload(NUM_KEYS), seed=3)
        run_workload(engine, gen, num_ops=2000, name="nocache")
        h, _, _ = estimated_hit_rate(engine)
        assert abs(h) < 0.10


class TestBlockCacheIdentity:
    def test_h_estimate_tracks_true_block_hit_rate(self):
        """For a block cache on points, h_estimate ~= measured hit rate."""
        tree = seed_database(NUM_KEYS, OPTS)
        engine = build_engine("block", tree, cache_bytes=512 * 1024, seed=1)
        gen = WorkloadGenerator(point_lookup_workload(NUM_KEYS), seed=3)
        result = run_workload(
            engine, gen, num_ops=3000, warmup_ops=3000, name="block"
        )
        assert result.hit_rate == pytest.approx(result.block_hit_rate, abs=0.08)

    def test_h_estimate_consistent_across_cache_sizes(self):
        """Bigger cache -> monotonically better h_estimate on points."""
        rates = []
        for cache_kb in (64, 256, 1024):
            tree = seed_database(NUM_KEYS, OPTS)
            engine = build_engine("block", tree, cache_bytes=cache_kb * 1024, seed=1)
            gen = WorkloadGenerator(point_lookup_workload(NUM_KEYS), seed=3)
            result = run_workload(
                engine, gen, num_ops=2000, warmup_ops=2000, name=str(cache_kb)
            )
            rates.append(result.hit_rate)
        assert rates[0] < rates[1] < rates[2]
