"""AdCache's adaptive behaviour: the boundary follows the workload.

These are the paper's qualitative claims (Sections 5.2-5.4): short-scan
traffic pushes memory toward the block cache, admission control bounds
the footprint of long scans, and the controller reacts to workload
shifts.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import apply_operation, seed_database
from repro.bench.strategies import build_engine
from repro.core.adcache import AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.lsm.options import LSMOptions
from repro.workloads.generator import (
    WorkloadGenerator,
    long_scan_workload,
    short_scan_workload,
)

OPTS = LSMOptions(memtable_entries=32, entries_per_sstable=64)
NUM_KEYS = 4000


def adcache_engine(seed=3, **cfg_kw):
    tree = seed_database(NUM_KEYS, OPTS)
    defaults = dict(
        total_cache_bytes=512 * 1024,
        window_size=250,
        hidden_dim=32,
        seed=seed,
    )
    defaults.update(cfg_kw)
    return AdCacheEngine(tree, AdCacheConfig(**defaults))


def drive(engine, spec, num_ops, seed=11):
    gen = WorkloadGenerator(spec, seed=seed)
    for op in gen.ops(num_ops):
        apply_operation(engine, op)


class TestBoundaryAdaptation:
    def test_short_scans_shift_memory_toward_block_cache(self):
        """Under pure short scans the learned range ratio should drop
        below its 0.5 start (the paper: AdCache 'converts the entire
        range cache into a block cache')."""
        ratios = []
        for seed in (4, 5, 6):
            engine = adcache_engine(seed=seed)
            drive(engine, short_scan_workload(NUM_KEYS), 20000, seed=seed + 50)
            tail = [r.range_ratio for r in engine.controller.history[-8:]]
            ratios.append(float(np.mean(tail)))
        assert min(ratios) < 0.2  # at least one seed clearly converted
        assert float(np.mean(ratios)) < 0.4

    def test_point_update_mix_shifts_memory_toward_range_cache(self):
        """Point lookups plus heavy updates: compaction invalidation
        makes the (compaction-proof) range cache the better home, so
        the boundary should move up from 0.5."""
        from repro.workloads.generator import WorkloadSpec

        spec = WorkloadSpec(num_keys=NUM_KEYS, get_ratio=0.5, write_ratio=0.5)
        ratios = []
        for seed in (3, 7, 8):
            engine = adcache_engine(seed=seed)
            drive(engine, spec, 20000, seed=seed + 50)
            tail = [r.range_ratio for r in engine.controller.history[-8:]]
            ratios.append(float(np.mean(tail)))
        assert max(ratios) > 0.8
        assert float(np.mean(ratios)) > 0.5

    def test_controller_explores_after_shift(self):
        """A workload shift should produce a negative reward and push
        the adaptive learning rate upward at the shift boundary."""
        engine = adcache_engine(seed=7)
        drive(engine, short_scan_workload(NUM_KEYS), 4000, seed=1)
        lr_before = engine.agent.actor_lr
        drive(engine, long_scan_workload(NUM_KEYS), 1000, seed=2)
        shift_records = engine.controller.history[-5:]
        assert any(r.reward < 0 for r in shift_records) or (
            engine.agent.actor_lr >= lr_before
        )


class TestAdmissionBehaviour:
    def test_partial_admission_bounds_long_scan_footprint(self):
        """With admission control, an infrequent long scan admits only
        b*(l-a) entries instead of all 64."""
        engine = adcache_engine(seed=3)
        engine.scan_admission.set_params(a=16.0, b=0.25)
        engine.controller.config.online_learning = False  # hold params
        used_before = engine.range_cache.used_bytes
        engine.scan("key" + "0" * 21, 64)
        admitted = (engine.range_cache.used_bytes - used_before) // 1024
        assert admitted <= 16  # 0.25 * (64 - 16) = 12, plus slack

    def test_frequency_gate_reduces_one_off_pollution(self):
        """With a high threshold, a stream of one-off point lookups
        leaves almost nothing in the range cache."""
        gated = adcache_engine(seed=3)
        gated.freq_admission.set_threshold(0.8)
        gated.controller.config.enable_admission = False  # freeze threshold
        for i in range(500):
            gated.get(f"key{i:021d}")
        assert len(gated.range_cache) <= 2


class TestRewardSignalEndToEnd:
    def test_h_estimate_tracks_actual_hit_improvement(self):
        """As caches warm on a skewed workload, the smoothed estimated
        hit rate should rise over windows."""
        engine = adcache_engine(seed=3)
        spec = short_scan_workload(NUM_KEYS, skew=0.99)
        drive(engine, spec, 6000, seed=9)
        records = engine.controller.history
        early = np.mean([r.h_estimate for r in records[:5]])
        late = np.mean([r.h_estimate for r in records[-5:]])
        assert late >= early - 0.05

    def test_windows_have_bounded_h_estimate(self):
        engine = adcache_engine(seed=3)
        drive(engine, short_scan_workload(NUM_KEYS), 3000, seed=9)
        for record in engine.controller.history:
            assert record.h_estimate <= 1.0 + 1e-9
