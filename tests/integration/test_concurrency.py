"""Multi-client support: sharded caches under concurrent read traffic."""

from __future__ import annotations

import threading

from repro.bench.harness import seed_database
from repro.bench.strategies import build_engine
from repro.lsm.options import LSMOptions
from repro.workloads.keys import key_of, value_of
from repro.workloads.zipfian import ZipfianGenerator

OPTS = LSMOptions(memtable_entries=32, entries_per_sstable=64)
NUM_KEYS = 2000


def run_clients(engine, num_clients, ops_per_client):
    errors = []

    def client(client_id):
        gen = ZipfianGenerator(NUM_KEYS, 0.9, seed=client_id)
        try:
            for idx in gen.sample(ops_per_client):
                i = int(idx)
                if i % 5 == 0:
                    start = min(i, NUM_KEYS - 8)
                    result = engine.scan(key_of(start), 8)
                    expected_first = key_of(start)
                    if result and result[0][0] != expected_first:
                        errors.append((client_id, "scan", i))
                else:
                    value = engine.get(key_of(i))
                    if value != value_of(i):
                        errors.append((client_id, "get", i))
        except Exception as exc:  # noqa: BLE001 - surfaced to the test
            errors.append((client_id, "exception", repr(exc)))

    threads = [threading.Thread(target=client, args=(c,)) for c in range(num_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestShardedConcurrency:
    def test_sharded_block_cache_concurrent_reads(self):
        tree = seed_database(NUM_KEYS, OPTS)
        engine = build_engine(
            "block", tree, cache_bytes=256 * 1024, seed=1, num_shards=4
        )
        errors = run_clients(engine, num_clients=4, ops_per_client=300)
        assert errors == []
        assert engine.block_cache.used_bytes <= engine.block_cache.budget_bytes

    def test_adcache_concurrent_reads_with_training(self):
        """Background control must not corrupt results under 4 clients."""
        tree = seed_database(NUM_KEYS, OPTS)
        engine = build_engine(
            "adcache", tree, cache_bytes=256 * 1024, seed=1, num_shards=4
        )
        engine.window_size = 200  # force frequent controller activity
        errors = run_clients(engine, num_clients=4, ops_per_client=300)
        assert errors == []
        assert len(engine.controller.history) > 0
        total = engine.config.total_cache_bytes
        assert (
            engine.block_cache.budget_bytes + engine.range_cache.budget_bytes
            == total
        )

    def test_window_sealed_exactly_once_across_threads(self):
        tree = seed_database(NUM_KEYS, OPTS)
        engine = build_engine("block", tree, cache_bytes=128 * 1024, seed=1)
        engine.window_size = 100
        sealed = []
        engine.on_window = sealed.append
        errors = run_clients(engine, num_clients=4, ops_per_client=250)
        assert errors == []
        # 1000 ops / 100 per window: every sealed window has <= a small
        # overshoot from racy op counting, and none are lost.
        assert 8 <= len(sealed) <= 12
