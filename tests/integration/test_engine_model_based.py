"""Model-based property tests: every cache strategy vs a dict model.

The ultimate correctness bar: under arbitrary interleavings of reads,
scans, writes, and deletes — with caches filling, evicting, admitting
partially, and surviving compactions — every strategy must return
exactly what a plain dict would.  A cache that serves stale or phantom
data fails here no matter how good its hit rate is.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import seed_database
from repro.bench.strategies import build_engine
from repro.lsm.options import LSMOptions
from repro.workloads.keys import key_of, value_of

OPTS = LSMOptions(memtable_entries=16, entries_per_sstable=32)
NUM_KEYS = 60

op_strategy = st.one_of(
    st.tuples(st.just("get"), st.integers(0, NUM_KEYS - 1), st.just(0)),
    st.tuples(
        st.just("scan"),
        st.integers(0, NUM_KEYS - 1),
        st.integers(1, 12),
    ),
    st.tuples(st.just("put"), st.integers(0, NUM_KEYS - 1), st.integers(1, 5)),
    st.tuples(st.just("delete"), st.integers(0, NUM_KEYS - 1), st.just(0)),
)


def check_strategy(strategy: str, ops, seed: int = 1) -> None:
    tree = seed_database(NUM_KEYS, OPTS)
    engine = build_engine(strategy, tree, cache_bytes=16 * 1024, seed=seed)
    model = {key_of(i): value_of(i) for i in range(NUM_KEYS)}
    for kind, idx, arg in ops:
        key = key_of(idx)
        if kind == "get":
            assert engine.get(key) == model.get(key), (strategy, "get", idx)
        elif kind == "scan":
            expected = sorted((k, v) for k, v in model.items() if k >= key)[:arg]
            assert engine.scan(key, arg) == expected, (strategy, "scan", idx, arg)
        elif kind == "put":
            value = value_of(idx, arg)
            engine.put(key, value)
            model[key] = value
        else:
            engine.delete(key)
            model.pop(key, None)
    # Final sweep: every key agrees.
    for i in range(NUM_KEYS):
        assert engine.get(key_of(i)) == model.get(key_of(i)), (strategy, i)


@settings(max_examples=25, deadline=None)
@given(st.lists(op_strategy, max_size=80))
def test_block_cache_engine_matches_model(ops):
    check_strategy("block", ops)


@settings(max_examples=25, deadline=None)
@given(st.lists(op_strategy, max_size=80))
def test_range_cache_engine_matches_model(ops):
    check_strategy("range", ops)


@settings(max_examples=20, deadline=None)
@given(st.lists(op_strategy, max_size=80))
def test_lecar_engine_matches_model(ops):
    check_strategy("range-lecar", ops)


@settings(max_examples=20, deadline=None)
@given(st.lists(op_strategy, max_size=80))
def test_cacheus_engine_matches_model(ops):
    check_strategy("range-cacheus", ops)


@settings(max_examples=15, deadline=None)
@given(st.lists(op_strategy, max_size=60))
def test_adcache_engine_matches_model(ops):
    """The full stack with a live controller at a tiny window size, so
    boundary moves and admission changes happen mid-sequence."""
    tree = seed_database(NUM_KEYS, OPTS)
    from repro.core.adcache import AdCacheEngine
    from repro.core.config import AdCacheConfig

    engine = AdCacheEngine(
        tree,
        AdCacheConfig(
            total_cache_bytes=16 * 1024, window_size=10, hidden_dim=16, seed=2
        ),
    )
    model = {key_of(i): value_of(i) for i in range(NUM_KEYS)}
    for kind, idx, arg in ops:
        key = key_of(idx)
        if kind == "get":
            assert engine.get(key) == model.get(key)
        elif kind == "scan":
            expected = sorted((k, v) for k, v in model.items() if k >= key)[:arg]
            assert engine.scan(key, arg) == expected
        elif kind == "put":
            value = value_of(idx, arg)
            engine.put(key, value)
            model[key] = value
        else:
            engine.delete(key)
            model.pop(key, None)
