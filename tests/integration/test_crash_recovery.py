"""Engine-level crash recovery: WAL replay + cache invalidation."""

from __future__ import annotations

from repro.bench.harness import seed_database
from repro.bench.strategies import build_engine
from repro.lsm.options import LSMOptions
from repro.workloads.keys import key_of, value_of

OPTS = LSMOptions(memtable_entries=64, entries_per_sstable=64)


def warmed_engine(strategy="adcache", num_keys=500, cache_bytes=256 * 1024):
    tree = seed_database(num_keys, LSMOptions(**vars(OPTS)), seed=7)
    engine = build_engine(strategy, tree, cache_bytes, seed=1)
    for i in range(0, num_keys, 3):
        engine.get(key_of(i))
    engine.scan(key_of(10), 16)
    return engine, tree


class TestCrashAndRecover:
    def test_unflushed_writes_survive_via_wal_replay(self):
        engine, tree = warmed_engine()
        engine.put(key_of(1), "rewritten")
        engine.put("brand-new-key", "fresh")
        engine.delete(key_of(2))
        assert len(tree.memtable) > 0  # genuinely unflushed

        replayed = engine.crash_and_recover()

        assert replayed == 3
        assert engine.crashes_total == 1
        assert engine.get(key_of(1)) == "rewritten"
        assert engine.get("brand-new-key") == "fresh"
        assert engine.get(key_of(2)) is None
        # Untouched keys still resolve from durable SSTables.
        assert engine.get(key_of(9)) == value_of(9)

    def test_caches_dropped_on_crash(self):
        engine, _ = warmed_engine()
        assert engine.block_cache.occupancy > 0
        assert engine.range_cache.occupancy > 0
        engine.crash_and_recover()
        assert engine.block_cache.occupancy == 0.0
        assert engine.range_cache.occupancy == 0.0

    def test_post_crash_reads_consistent_with_never_crashed_engine(self):
        crashed, _ = warmed_engine()
        control, _ = warmed_engine()
        crashed.put(key_of(4), "updated")
        control.put(key_of(4), "updated")
        crashed.crash_and_recover()
        for i in range(0, 500, 7):
            assert crashed.get(key_of(i)) == control.get(key_of(i))
        assert crashed.scan(key_of(0), 32) == control.scan(key_of(0), 32)

    def test_window_accounting_survives_crash(self):
        """Post-crash window stats must not go negative: the block-stats
        snapshot is re-based on the cleared cache."""
        engine, _ = warmed_engine()
        engine.window_size = 100
        engine.crash_and_recover()
        for i in range(250):
            engine.get(key_of(i % 500))
        for window in engine.windows:
            assert window.io_miss >= 0
            assert window.block_hits >= 0
            assert window.block_misses >= 0
            assert window.is_healthy()

    def test_repeated_crashes_are_stable(self):
        engine, _ = warmed_engine(strategy="block")
        for round_no in range(4):
            engine.put(f"crash-round-{round_no}", str(round_no))
            engine.crash_and_recover()
        assert engine.crashes_total == 4
        for round_no in range(4):
            assert engine.get(f"crash-round-{round_no}") == str(round_no)
