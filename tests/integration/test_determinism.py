"""Determinism regression: the same seed reproduces a run exactly.

The whole simulator is built on injected seeded RNGs (``Random`` /
``numpy`` generators) and metered sim time; nothing may read ambient
randomness or the wall clock (lint rule SIM001 enforces the import
side).  This harness runs the full AdCache stack twice with identical
seeds and asserts the runs match operation-for-operation — results,
counters, controller windows, and final cache contents — and that
enabling the sanitizer does not perturb the simulation.
"""

import hashlib

import pytest

from repro.bench.harness import seed_database
from repro.bench.strategies import build_engine
from repro.core.engine import KVEngine
from repro.faults.chaos import _apply_compared
from repro.lsm.options import LSMOptions
from repro.workloads.generator import WorkloadGenerator, balanced_workload

NUM_KEYS = 2_000
OPS = 5_000
CACHE_BYTES = 256 * 1024


def _run_once(strategy: str = "adcache", seed: int = 11, ops: int = OPS):
    options = LSMOptions(memtable_entries=32, entries_per_sstable=64)
    tree = seed_database(NUM_KEYS, options, seed=7)
    engine = build_engine(strategy, tree, CACHE_BYTES, seed=seed)
    generator = WorkloadGenerator(balanced_workload(NUM_KEYS), seed=seed + 1)
    results = [_apply_compared(engine, op) for op in generator.ops(ops)]
    return engine, results


def _fingerprint(engine: KVEngine):
    tree = engine.tree
    fp = {
        "tree": (
            tree.gets_total,
            tree.scans_total,
            tree.flushes_total,
            tree.bloom_negative_total,
            tree.bloom_false_positive_total,
            tree.disk.block_reads_total,
            tree.disk.bytes_read_total,
            tree.num_levels,
            tree.num_sorted_runs,
            sorted(tree.disk.live_sst_ids()),
        ),
        "windows": [
            (
                w.ops,
                w.range_point_hits,
                w.range_scan_hits,
                w.block_hits,
                w.block_misses,
                w.io_miss,
                w.range_occupancy,
                w.block_occupancy,
                w.range_ratio,
            )
            for w in engine.windows
        ],
    }
    if engine.block_cache is not None:
        stats = engine.block_cache.stats
        fp["block"] = (
            len(engine.block_cache),
            engine.block_cache.used_bytes,
            engine.block_cache.budget_bytes,
            stats.hits,
            stats.misses,
            stats.evictions,
        )
    if engine.range_cache is not None:
        stats = engine.range_cache.stats
        fp["range"] = (
            engine.range_cache.resident_keys(),
            engine.range_cache.complete_intervals(),
            engine.range_cache.used_bytes,
            engine.range_cache.budget_bytes,
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.rejections,
        )
    return fp


def test_double_run_is_byte_identical():
    engine_a, results_a = _run_once(seed=11)
    engine_b, results_b = _run_once(seed=11)
    assert results_a == results_b
    assert _fingerprint(engine_a) == _fingerprint(engine_b)
    # Sanity: the workload actually exercised the stack.
    assert engine_a.tree.flushes_total > 0
    assert len(engine_a.windows) >= 4


def test_different_seeds_diverge():
    _, results_a = _run_once(seed=11, ops=1_500)
    _, results_b = _run_once(seed=12, ops=1_500)
    assert results_a != results_b


@pytest.mark.parametrize("strategy", ["range-lecar", "range-cacheus"])
def test_learned_policies_are_deterministic_too(strategy):
    engine_a, results_a = _run_once(strategy=strategy, seed=5, ops=2_000)
    engine_b, results_b = _run_once(strategy=strategy, seed=5, ops=2_000)
    assert results_a == results_b
    assert _fingerprint(engine_a) == _fingerprint(engine_b)


SERVE_KWARGS = dict(
    num_clients=8,
    num_shards=4,
    total_ops=4_000,
    num_keys=2_000,
    cache_bytes=256 * 1024,
    seed=21,
    keep_trace=True,
)


def _run_serve_once():
    from repro.serve import ServeConfig, run_serve

    return run_serve(ServeConfig(**SERVE_KWARGS))


def test_serve_double_run_is_byte_identical():
    a = _run_serve_once()
    b = _run_serve_once()
    assert a.trace == b.trace
    assert a.fingerprint() == b.fingerprint()
    assert a.format_report() == b.format_report()
    # Sanity: the serving layer actually did multi-shard work.
    assert a.completed > 0
    assert len(a.shards) == 4
    assert len(a.tenants) == 8
    assert a.rebalances >= 1


def test_serve_sanitized_run_matches_unsanitized_run(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain = _run_serve_once()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sane = _run_serve_once()
    assert plain.trace == sane.trace
    assert plain.fingerprint() == sane.fingerprint()


# sha256 over a balanced (point/scan/write) run + a serving-layer run,
# computed on the pre-optimization tree at the CI seed.  Hot-path
# optimizations must keep seeded behaviour byte-identical, so this value
# never changes when code merely gets faster; it changes only when a PR
# deliberately alters simulation semantics (and must say so).
GOLDEN_MIXED_SERVE_DIGEST = (
    "9ae1a219dbe6859d72570f8836f2010b8186fd14512e04110d759120dec9dd20"
)


def test_mixed_and_serve_digest_matches_pre_optimization_golden():
    engine, results = _run_once(seed=11)
    serve = _run_serve_once()
    payload = repr((results, _fingerprint(engine), serve.fingerprint()))
    digest = hashlib.sha256(payload.encode()).hexdigest()
    assert digest == GOLDEN_MIXED_SERVE_DIGEST, (
        "seeded run diverged from the pre-optimization golden digest; "
        "an optimization changed simulated behaviour"
    )


def test_sanitized_run_matches_unsanitized_run(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    engine_plain, results_plain = _run_once(seed=11, ops=2_000)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    engine_sane, results_sane = _run_once(seed=11, ops=2_000)
    assert results_plain == results_sane
    assert _fingerprint(engine_plain) == _fingerprint(engine_sane)
    # The sanitizer must actually have run checks, not just been armed.
    shards = engine_sane.block_cache._shards
    assert sum(s._sanitizer.checks_run for s in shards if s._sanitizer) > 0
    assert engine_sane.range_cache._sanitizer is not None
    assert engine_sane.range_cache._sanitizer.checks_run > 0
