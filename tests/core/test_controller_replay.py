"""Controller replay buffer, warmup gating, rate-limited boundary, and
bit-for-bit offline replay of the obs decision-audit log."""

from __future__ import annotations

import pytest

from repro.cache.admission import FrequencyAdmission, PartialScanAdmission
from repro.cache.block_cache import BlockCache
from repro.cache.range_cache import RangeCache
from repro.cache.sketch import CountMinSketch
from repro.core.config import AdCacheConfig
from repro.core.controller import PolicyDecisionController
from repro.core.stats import WindowStats
from repro.lsm.storage import SimulatedDisk
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import STATE_DIM


def controller_with(**cfg_kw):
    config = AdCacheConfig(total_cache_bytes=1 << 20, hidden_dim=16, **cfg_kw)
    agent = ActorCriticAgent(STATE_DIM, 4, hidden_dim=16, seed=1)
    disk = SimulatedDisk()
    block = BlockCache(config.total_cache_bytes // 2, 4096, disk.read_block)
    range_ = RangeCache(config.total_cache_bytes // 2, entry_charge=1024)
    return PolicyDecisionController(
        config,
        agent,
        block,
        range_,
        FrequencyAdmission(CountMinSketch(width=64, depth=2, seed=1)),
        PartialScanAdmission(),
        entries_per_block=4,
        level0_max_runs=8,
    )


def window(index, io_miss=1000):
    return WindowStats(
        window_index=index, ops=1000, points=700, scans=200, writes=100,
        scan_length_sum=200 * 16, io_miss=io_miss, num_levels=4, level0_runs=2,
    )


class TestReplayBuffer:
    def test_buffer_bounded_by_capacity(self):
        controller = controller_with(replay_capacity=5)
        for i in range(20):
            controller.on_window(window(i))
        assert len(controller._replay) == 5

    def test_updates_per_window_honored(self):
        controller = controller_with(updates_per_window=3)
        controller.on_window(window(0))
        controller.on_window(window(1))
        assert controller.agent.updates_total == 3
        controller.on_window(window(2))
        assert controller.agent.updates_total == 6

    def test_single_update_mode(self):
        controller = controller_with(updates_per_window=1)
        controller.on_window(window(0))
        controller.on_window(window(1))
        assert controller.agent.updates_total == 1


class TestActorWarmup:
    def test_actor_frozen_during_warmup(self):
        controller = controller_with(
            actor_warmup_windows=5, updates_per_window=1, exploration_log_std=-4.0
        )
        agent = controller.agent
        state_probe = controller._featurize(window(0), 0.5)
        mean_before = agent.action_mean(state_probe).copy()
        for i in range(4):  # windows 0..3: all inside warmup
            controller.on_window(window(i))
        mean_after = agent.action_mean(state_probe)
        import numpy as np

        assert np.allclose(mean_before, mean_after, atol=1e-5)

    def test_actor_moves_after_warmup(self):
        controller = controller_with(actor_warmup_windows=2, updates_per_window=4)
        agent = controller.agent
        state_probe = controller._featurize(window(0), 0.5)
        mean_before = agent.action_mean(state_probe).copy()
        for i in range(12):
            controller.on_window(window(i, io_miss=500 + 100 * (i % 4)))
        import numpy as np

        assert not np.allclose(mean_before, agent.action_mean(state_probe), atol=1e-6)


class TestAuditReplay:
    """The exported audit log reproduces the live action stream exactly."""

    def _recorded_run(self, tmp_path, **config_kw):
        from repro.bench.harness import apply_operation
        from repro.core.adcache import AdCacheEngine
        from repro.lsm.options import LSMOptions
        from repro.lsm.tree import LSMTree
        from repro.obs.recorder import ObsRecorder
        from repro.workloads.generator import WorkloadGenerator, balanced_workload
        from repro.workloads.keys import key_of, value_of

        opts = LSMOptions(memtable_entries=32, entries_per_sstable=64)
        tree = LSMTree(opts)
        tree.bulk_load((key_of(i), value_of(i)) for i in range(1500))
        config = AdCacheConfig(
            total_cache_bytes=1 << 20, window_size=100, hidden_dim=32,
            seed=1, **config_kw,
        )
        engine = AdCacheEngine(tree, config=config)
        recorder = ObsRecorder()
        engine.attach_recorder(recorder)
        gen = WorkloadGenerator(balanced_workload(1500), seed=2)
        for op in gen.ops(800):
            apply_operation(engine, op)
        engine.flush_window()
        paths = recorder.export(str(tmp_path))
        return engine, paths["audit"]

    def test_replay_reproduces_actions_bit_for_bit(self, tmp_path):
        from repro.obs.audit import load_audit_log, verify_replay

        engine, audit_path = self._recorded_run(tmp_path)
        header, records = load_audit_log(audit_path)
        assert len(records) == len(engine.controller.history)
        assert verify_replay(header, records) == []

    def test_replay_matches_live_applied_parameters(self, tmp_path):
        from repro.obs.audit import load_audit_log, replay_decision_log

        engine, audit_path = self._recorded_run(tmp_path)
        header, records = load_audit_log(audit_path)
        replayed = replay_decision_log(header, records)
        # The final replayed split equals the live controller's.
        assert replayed[-1].range_ratio == engine.controller.range_ratio

    def test_tampered_log_fails_verification(self, tmp_path):
        from repro.obs.audit import load_audit_log, verify_replay

        _, audit_path = self._recorded_run(tmp_path)
        header, records = load_audit_log(audit_path)
        records[1]["window"]["io_miss"] = records[1]["window"]["io_miss"] + 500
        problems = verify_replay(header, records)
        assert problems  # divergence is reported, not silently absorbed

    def test_externally_supplied_agent_refuses_replay(self, tmp_path):
        import pytest as _pytest

        from repro.errors import ObsError
        from repro.obs.audit import build_replay_controller

        with _pytest.raises(ObsError, match="agent_init"):
            build_replay_controller({
                "config": {}, "agent_init": None,
                "entries_per_block": 4, "level0_max_runs": 8,
            })


class TestRateLimitedBoundary:
    def test_ratio_moves_at_most_step_per_window(self):
        controller = controller_with(max_ratio_step=0.05)
        prev = controller.range_ratio
        for i in range(10):
            controller.on_window(window(i))
            assert abs(controller.range_ratio - prev) <= 0.05 + 1e-9
            prev = controller.range_ratio

    def test_learned_action_is_the_applied_one(self):
        controller = controller_with(max_ratio_step=0.01)
        controller.on_window(window(0))
        controller.on_window(window(1))
        # The stored previous action's ratio equals the applied ratio.
        assert controller._prev_action is not None
        assert controller._prev_action[0] == pytest.approx(
            controller.range_ratio, abs=1e-6
        )
