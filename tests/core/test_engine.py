"""KVEngine: query handling path, cache fill path, window sealing."""

from __future__ import annotations

import pytest

from repro.cache.admission import FrequencyAdmission, PartialScanAdmission
from repro.cache.block_cache import BlockCache
from repro.cache.kv_cache import KVCache
from repro.cache.range_cache import RangeCache
from repro.cache.sketch import CountMinSketch
from repro.core.engine import KVEngine
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.keys import key_of, value_of


def seeded(num_keys=1000):
    opts = LSMOptions(memtable_entries=32, entries_per_sstable=64)
    tree = LSMTree(opts)
    tree.bulk_load((key_of(i), value_of(i)) for i in range(num_keys))
    return tree


def engine_with(tree, block_blocks=0, range_entries=0, kv_entries=0, **kw):
    opts = tree.options
    block = (
        BlockCache(
            block_blocks * opts.block_size, opts.block_size, tree.disk.read_block
        )
        if block_blocks
        else None
    )
    range_ = (
        RangeCache(range_entries * 1024, entry_charge=1024) if range_entries else None
    )
    kv = KVCache(kv_entries * 1024, entry_charge=1024) if kv_entries else None
    return KVEngine(tree, block_cache=block, range_cache=range_, kv_cache=kv, **kw)


class TestQueryHandlingPath:
    def test_range_cache_consulted_first(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=64)
        engine.get(key_of(10))  # miss -> fills range cache
        reads = tree.sst_reads_total
        assert engine.get(key_of(10)) == value_of(10)
        assert tree.sst_reads_total == reads  # no disk I/O on the hit
        assert engine.collector.totals().range_point_hits == 1

    def test_memtable_served_before_sstables(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=64)
        engine.put(key_of(2000), "fresh")  # memtable only
        reads = tree.sst_reads_total
        assert engine.get(key_of(2000)) == "fresh"
        assert tree.sst_reads_total == reads

    def test_block_cache_serves_repeat_reads(self):
        tree = seeded()
        engine = engine_with(tree, block_blocks=32)
        engine.get(key_of(10))
        reads = tree.sst_reads_total
        engine.get(key_of(10))
        assert tree.sst_reads_total == reads

    def test_memtable_results_not_admitted_to_range_cache(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=64)
        engine.put(key_of(3000), "memonly")
        engine.get(key_of(3000))
        # Served from the memtable; there is nothing to cache.
        assert engine.range_cache.contains(key_of(3000)) is False

    def test_absent_key_returns_none_and_is_not_cached(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=64, kv_entries=64)
        assert engine.get("key" + "9" * 21) is None
        assert len(engine.range_cache) == 0
        assert len(engine.kv_cache) == 0


class TestScanPath:
    def test_scan_fills_and_hits_range_cache(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=64)
        first = engine.scan(key_of(100), 8)
        reads = tree.sst_reads_total
        second = engine.scan(key_of(100), 8)
        assert first == second
        assert tree.sst_reads_total == reads
        assert engine.collector.totals().range_scan_hits == 1

    def test_scan_results_correct_under_cache(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=256)
        expected = [(key_of(i), value_of(i)) for i in range(50, 58)]
        assert engine.scan(key_of(50), 8) == expected
        assert engine.scan(key_of(50), 8) == expected  # cached copy

    def test_partial_admission_respected(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=256)
        engine.scan_admission = PartialScanAdmission(a=4, b=0.0)
        engine.scan(key_of(100), 16)
        assert len(engine.range_cache) == 0  # b=0 admits nothing past a
        assert engine.range_cache.stats.rejections >= 1

    def test_kv_cache_never_serves_scans(self):
        tree = seeded()
        engine = engine_with(tree, kv_entries=64)
        engine.scan(key_of(10), 4)
        reads = tree.sst_reads_total
        engine.scan(key_of(10), 4)
        assert tree.sst_reads_total > reads  # scans always go to the tree


class TestFrequencyAdmissionPath:
    def test_threshold_blocks_cold_point_fills(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=64)
        sketch = CountMinSketch(width=512, depth=4, seed=1)
        engine.freq_admission = FrequencyAdmission(sketch, threshold=0.9)
        for i in range(10):
            engine.get(key_of(i))
        assert len(engine.range_cache) <= 1  # almost everything rejected

    def test_zero_threshold_admits(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=64)
        engine.freq_admission = FrequencyAdmission(
            CountMinSketch(width=512, depth=4, seed=1), threshold=0.0
        )
        engine.get(key_of(1))
        assert engine.range_cache.contains(key_of(1))


class TestWriteCoherence:
    def test_put_updates_cached_value(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=64, kv_entries=64)
        engine.get(key_of(5))
        engine.put(key_of(5), "updated")
        assert engine.get(key_of(5)) == "updated"

    def test_delete_removes_from_caches(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=64, kv_entries=64)
        engine.get(key_of(5))
        engine.delete(key_of(5))
        assert engine.get(key_of(5)) is None

    def test_scan_after_overwrite_returns_new_value(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=256)
        engine.scan(key_of(10), 4)
        engine.put(key_of(11), "v-new")
        result = engine.scan(key_of(10), 4)
        assert (key_of(11), "v-new") in result

    def test_scan_after_delete_skips_key(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=256)
        engine.scan(key_of(10), 4)
        engine.delete(key_of(11))
        result = engine.scan(key_of(10), 4)
        assert key_of(11) not in [k for k, _ in result]
        assert [k for k, _ in result][:2] == [key_of(10), key_of(12)]


class TestWindows:
    def test_window_sealed_every_n_ops(self):
        tree = seeded()
        windows = []
        engine = engine_with(tree, range_entries=64, window_size=10)
        engine.on_window = windows.append
        for i in range(35):
            engine.get(key_of(i))
        assert len(engine.windows) == 3
        assert windows == engine.windows
        assert all(w.ops == 10 for w in windows)

    def test_io_miss_is_windowed_delta(self):
        tree = seeded()
        engine = engine_with(tree, block_blocks=512, window_size=10)
        for i in range(20):
            engine.get(key_of(i % 3))  # mostly hits after warmup
        first, second = engine.windows
        assert first.io_miss >= second.io_miss
        assert second.io_miss < 10

    def test_flush_window_seals_partial(self):
        tree = seeded()
        engine = engine_with(tree, range_entries=64, window_size=1000)
        engine.get(key_of(1))
        window = engine.flush_window()
        assert window is not None and window.ops == 1
        assert engine.flush_window() is None

    def test_current_range_ratio(self):
        tree = seeded()
        opts = tree.options
        block = BlockCache(3 * opts.block_size, opts.block_size, tree.disk.read_block)
        range_ = RangeCache(1 * opts.block_size, entry_charge=1024)
        engine = KVEngine(tree, block_cache=block, range_cache=range_)
        assert engine.current_range_ratio == pytest.approx(0.25)
