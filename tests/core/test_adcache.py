"""AdCacheEngine: the full wired system."""

from __future__ import annotations

import pytest

from repro.core.adcache import ACTION_DIM, AdCacheEngine, default_entry_charge
from repro.core.config import AdCacheConfig
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import STATE_DIM
from repro.workloads.generator import WorkloadGenerator, balanced_workload
from repro.workloads.keys import key_of, value_of


def small_config(**kw):
    defaults = dict(
        total_cache_bytes=1 << 20, window_size=100, hidden_dim=32, seed=1
    )
    defaults.update(kw)
    return AdCacheConfig(**defaults)


def seeded_engine(num_keys=2000, **config_kw):
    opts = LSMOptions(memtable_entries=32, entries_per_sstable=64)
    tree = LSMTree(opts)
    tree.bulk_load((key_of(i), value_of(i)) for i in range(num_keys))
    return AdCacheEngine(tree, config=small_config(**config_kw))


class TestConstruction:
    def test_initial_budget_split(self):
        engine = seeded_engine(initial_range_ratio=0.25)
        total = engine.config.total_cache_bytes
        assert engine.range_cache.budget_bytes == total // 4
        assert engine.block_cache.budget_bytes == total - total // 4

    def test_components_wired(self):
        engine = seeded_engine()
        assert engine.block_cache is not None
        assert engine.range_cache is not None
        assert engine.freq_admission is not None
        assert engine.scan_admission is not None
        assert engine.on_window == engine.controller.on_window

    def test_admission_disabled_strips_components(self):
        engine = seeded_engine(enable_admission=False)
        assert engine.freq_admission is None
        assert engine.scan_admission is None

    def test_custom_agent_accepted(self):
        opts = LSMOptions(memtable_entries=32, entries_per_sstable=64)
        tree = LSMTree(opts)
        tree.bulk_load((key_of(i), value_of(i)) for i in range(100))
        agent = ActorCriticAgent(STATE_DIM, ACTION_DIM, hidden_dim=16, seed=7)
        engine = AdCacheEngine(tree, config=small_config(), agent=agent)
        assert engine.agent is agent

    def test_entry_charge_matches_options(self):
        engine = seeded_engine()
        assert engine.entry_charge == 24 + 1000
        assert default_entry_charge() == 1024


class TestOperation:
    def test_serves_workload_correctly(self):
        engine = seeded_engine()
        for i in range(0, 2000, 101):
            assert engine.get(key_of(i)) == value_of(i)
        result = engine.scan(key_of(500), 8)
        assert result == [(key_of(500 + j), value_of(500 + j)) for j in range(8)]

    def test_controller_runs_at_window_boundaries(self):
        engine = seeded_engine()
        gen = WorkloadGenerator(balanced_workload(2000), seed=2)
        for op in gen.ops(450):
            from repro.bench.harness import apply_operation
            apply_operation(engine, op)
        assert len(engine.controller.history) == 4  # 450 ops / 100 window

    def test_budget_conserved_while_running(self):
        engine = seeded_engine()
        gen = WorkloadGenerator(balanced_workload(2000), seed=3)
        from repro.bench.harness import apply_operation
        for op in gen.ops(500):
            apply_operation(engine, op)
        total = engine.config.total_cache_bytes
        assert (
            engine.block_cache.budget_bytes + engine.range_cache.budget_bytes == total
        )
        assert engine.block_cache.used_bytes <= engine.block_cache.budget_bytes
        assert engine.range_cache.used_bytes <= engine.range_cache.budget_bytes

    def test_correctness_under_adaptation(self):
        """Reads stay correct while the controller reshapes the caches."""
        engine = seeded_engine()
        from repro.bench.harness import apply_operation
        gen = WorkloadGenerator(balanced_workload(2000), seed=4)
        for op in gen.ops(700):
            apply_operation(engine, op)
        engine.put(key_of(42), "sentinel")
        assert engine.get(key_of(42)) == "sentinel"
        scan = engine.scan(key_of(41), 3)
        assert (key_of(42), "sentinel") in scan
