"""Engine behaviour under less-common cache compositions."""

from __future__ import annotations

import pytest

from repro.bench.harness import seed_database
from repro.cache.block_cache import BlockCache
from repro.cache.kv_cache import KVCache
from repro.cache.range_cache import RangeCache
from repro.core.engine import KVEngine
from repro.lsm.options import LSMOptions
from repro.workloads.keys import key_of, value_of

OPTS = LSMOptions(memtable_entries=32, entries_per_sstable=64)


class TestNoCacheEngine:
    def test_bare_engine_serves_correctly(self):
        tree = seed_database(500, OPTS)
        engine = KVEngine(tree)
        assert engine.get(key_of(100)) == value_of(100)
        assert engine.scan(key_of(10), 4)[0][0] == key_of(10)

    def test_bare_engine_windows_still_seal(self):
        tree = seed_database(500, OPTS)
        engine = KVEngine(tree, window_size=50)
        for i in range(120):
            engine.get(key_of(i % 500))
        assert len(engine.windows) == 2
        assert engine.windows[0].io_miss > 0
        assert engine.current_range_ratio == 0.0

    def test_every_disk_read_counted_without_cache(self):
        tree = seed_database(500, OPTS)
        engine = KVEngine(tree)
        reads0 = engine.sst_reads_total
        engine.get(key_of(7))
        engine.get(key_of(7))  # same key: no cache, reads again
        assert engine.sst_reads_total >= reads0 + 2


class TestKVPlusBlock:
    """AC-Key-style composition: row cache over block cache."""

    def engine(self):
        tree = seed_database(1000, OPTS)
        block = BlockCache(64 * OPTS.block_size, OPTS.block_size, tree.disk.read_block)
        kv = KVCache(64 * 1024, entry_charge=1024)
        return KVEngine(tree, block_cache=block, kv_cache=kv)

    def test_kv_hit_short_circuits_block_cache(self):
        engine = self.engine()
        engine.get(key_of(5))
        lookups_before = engine.block_cache.stats.lookups
        assert engine.get(key_of(5)) == value_of(5)
        assert engine.block_cache.stats.lookups == lookups_before

    def test_scan_bypasses_kv_but_uses_block_cache(self):
        engine = self.engine()
        engine.scan(key_of(100), 8)
        reads = engine.tree.disk.block_reads_total
        engine.scan(key_of(100), 8)  # blocks now cached
        assert engine.tree.disk.block_reads_total == reads

    def test_write_keeps_both_coherent(self):
        engine = self.engine()
        engine.get(key_of(5))
        engine.put(key_of(5), "fresh")
        assert engine.get(key_of(5)) == "fresh"
        assert (key_of(5), "fresh") in engine.scan(key_of(5), 1)


class TestRangePlusBlock:
    """The AdCache composition minus the controller: both caches static."""

    def engine(self):
        tree = seed_database(1000, OPTS)
        block = BlockCache(32 * OPTS.block_size, OPTS.block_size, tree.disk.read_block)
        range_ = RangeCache(128 * 1024, entry_charge=1024)
        return KVEngine(tree, block_cache=block, range_cache=range_)

    def test_range_hit_preferred_over_block(self):
        engine = self.engine()
        engine.get(key_of(5))  # fills both range (result) and block
        block_lookups = engine.block_cache.stats.lookups
        assert engine.get(key_of(5)) == value_of(5)
        assert engine.block_cache.stats.lookups == block_lookups

    def test_block_cache_backstops_range_misses(self):
        engine = self.engine()
        engine.scan(key_of(100), 8)
        engine.range_cache.clear()  # simulate range-side eviction storm
        reads = engine.tree.disk.block_reads_total
        result = engine.scan(key_of(100), 8)
        assert len(result) == 8
        assert engine.tree.disk.block_reads_total == reads  # blocks held

    def test_window_reports_both_occupancies(self):
        engine = self.engine()
        engine.window_size = 30
        for i in range(35):
            engine.get(key_of(i))
        window = engine.windows[0]
        assert window.range_occupancy > 0.0
        assert window.block_occupancy > 0.0
