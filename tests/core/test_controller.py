"""Policy decision controller: reward flow, action application, delay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.admission import FrequencyAdmission, PartialScanAdmission
from repro.cache.block_cache import BlockCache
from repro.cache.range_cache import RangeCache
from repro.cache.sketch import CountMinSketch
from repro.core.config import AdCacheConfig
from repro.core.controller import PolicyDecisionController
from repro.core.stats import WindowStats
from repro.lsm.storage import SimulatedDisk
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import STATE_DIM


def make_controller(config=None, **config_kw):
    config = config or AdCacheConfig(
        total_cache_bytes=1 << 20, hidden_dim=32, **config_kw
    )
    agent = ActorCriticAgent(STATE_DIM, 4, hidden_dim=32, seed=1)
    disk = SimulatedDisk()
    block = BlockCache(config.total_cache_bytes // 2, 4096, disk.read_block)
    range_ = RangeCache(config.total_cache_bytes // 2, entry_charge=1024)
    freq = FrequencyAdmission(CountMinSketch(width=256, depth=2, seed=1))
    scan = PartialScanAdmission(a=16, b=0.5)
    controller = PolicyDecisionController(
        config, agent, block, range_, freq, scan,
        entries_per_block=4, level0_max_runs=8,
    )
    return controller, block, range_, freq, scan


def window(points=500, scans=300, writes=200, io_miss=1000, index=0):
    return WindowStats(
        window_index=index,
        ops=points + scans + writes,
        points=points,
        scans=scans,
        writes=writes,
        scan_length_sum=scans * 16,
        io_miss=io_miss,
        num_levels=4,
        level0_runs=2,
    )


class TestControlLoop:
    def test_record_appended_per_window(self):
        controller, *_ = make_controller()
        controller.on_window(window(index=0))
        controller.on_window(window(index=1))
        assert len(controller.history) == 2
        assert controller.history[1].window_index == 1

    def test_budgets_always_sum_to_total(self):
        controller, block, range_, _, _ = make_controller()
        total = controller.config.total_cache_bytes
        for i in range(10):
            controller.on_window(window(index=i, io_miss=1000 + 100 * i))
            assert block.budget_bytes + range_.budget_bytes == total

    def test_admission_params_applied(self):
        controller, _, _, freq, scan = make_controller()
        controller.on_window(window())
        assert freq.threshold == pytest.approx(controller.point_threshold)
        assert scan.a == pytest.approx(controller.scan_params[0])
        assert scan.b == pytest.approx(controller.scan_params[1])

    def test_one_window_delay(self):
        """No agent update can happen on the very first window."""
        controller, *_ = make_controller()
        controller.on_window(window(index=0))
        assert controller.agent.updates_total == 0
        controller.on_window(window(index=1))
        # One fresh transition plus replayed passes.
        assert (
            controller.agent.updates_total
            == controller.config.updates_per_window
        )

    def test_learning_rate_adapts_with_reward(self):
        controller, *_ = make_controller()
        controller.on_window(window(io_miss=2000))
        lr_before = controller.agent.actor_lr
        # A dramatic hit-rate drop must not *decrease* the rate.
        controller.on_window(window(io_miss=4000))
        record = controller.history[-1]
        assert record.trend < 0
        assert controller.agent.actor_lr >= lr_before

    def test_actions_clipped_to_valid_ranges(self):
        controller, *_ = make_controller()
        for i in range(8):
            record = controller.on_window(window(index=i))
            assert 0.0 <= record.range_ratio <= 1.0
            assert 0.0 <= record.point_threshold <= controller.config.point_threshold_max
            assert 0.0 <= record.scan_a <= controller.config.a_max
            assert 0.0 <= record.scan_b <= 1.0


class TestAblationFlags:
    def test_partitioning_disabled_freezes_boundary(self):
        controller, block, range_, _, _ = make_controller(
            enable_partitioning=False
        )
        b0, r0 = block.budget_bytes, range_.budget_bytes
        for i in range(5):
            controller.on_window(window(index=i))
        assert (block.budget_bytes, range_.budget_bytes) == (b0, r0)
        assert controller.range_ratio == controller.config.initial_range_ratio

    def test_admission_disabled_freezes_thresholds(self):
        controller, _, _, freq, scan = make_controller(enable_admission=False)
        thr0, a0, b0 = freq.threshold, scan.a, scan.b
        for i in range(5):
            controller.on_window(window(index=i))
        assert (freq.threshold, scan.a, scan.b) == (thr0, a0, b0)

    def test_frozen_agent_never_updates(self):
        controller, *_ = make_controller(online_learning=False)
        for i in range(5):
            controller.on_window(window(index=i))
        assert controller.agent.updates_total == 0
        # Frozen agents act deterministically: once the smoothed hit
        # rate settles under identical windows, the action settles too.
        for i in range(5, 30):
            controller.on_window(window(index=i))
        r1 = controller.on_window(window(index=30))
        r2 = controller.on_window(window(index=31))
        assert r1.range_ratio == pytest.approx(r2.range_ratio, abs=0.02)


class TestRewardPlumbing:
    def test_trend_reflects_io_direction(self):
        controller, *_ = make_controller()
        controller.on_window(window(io_miss=3000, index=0))
        improving = controller.on_window(window(io_miss=500, index=1))
        assert improving.trend > 0
        degrading = controller.on_window(window(io_miss=4000, index=2))
        assert degrading.trend < 0

    def test_level_reward_separates_good_and_bad_windows(self):
        controller, *_ = make_controller()
        controller.on_window(window(io_miss=3000, index=0))
        good = controller.on_window(window(io_miss=500, index=1))
        controller.on_window(window(io_miss=4000, index=2))
        bad = controller.on_window(window(io_miss=4000, index=3))
        assert good.reward > bad.reward

    def test_h_estimate_in_record(self):
        controller, *_ = make_controller()
        record = controller.on_window(window(points=1000, scans=0, writes=0, io_miss=500))
        assert record.h_estimate == pytest.approx(0.5)
