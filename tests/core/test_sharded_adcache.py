"""AdCache with the key-range-sharded range cache (Section 4.4)."""

from __future__ import annotations

import threading

from repro.bench.harness import apply_operation, seed_database
from repro.cache.sharded_range import ShardedRangeCache
from repro.core.adcache import AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.lsm.options import LSMOptions
from repro.workloads.generator import WorkloadGenerator, balanced_workload
from repro.workloads.keys import key_of, value_of

OPTS = LSMOptions(memtable_entries=32, entries_per_sstable=64)
NUM_KEYS = 1000


def sharded_engine(**cfg_kw):
    tree = seed_database(NUM_KEYS, OPTS)
    boundaries = tuple(key_of(i) for i in (250, 500, 750))
    config = AdCacheConfig(
        total_cache_bytes=256 * 1024,
        window_size=200,
        hidden_dim=16,
        range_shard_boundaries=boundaries,
        num_shards=4,
        seed=1,
        **cfg_kw,
    )
    return AdCacheEngine(tree, config)


class TestShardedAdCache:
    def test_range_cache_is_sharded(self):
        engine = sharded_engine()
        assert isinstance(engine.range_cache, ShardedRangeCache)
        assert engine.range_cache.num_shards == 4

    def test_serves_correctly(self):
        engine = sharded_engine()
        for i in range(0, NUM_KEYS, 97):
            assert engine.get(key_of(i)) == value_of(i)
        assert engine.scan(key_of(300), 8)[0][0] == key_of(300)
        # Repeat scans hit the owning shard.
        reads = engine.tree.disk.block_reads_total
        engine.scan(key_of(300), 8)
        assert engine.tree.disk.block_reads_total == reads

    def test_controller_resizes_all_shards(self):
        engine = sharded_engine()
        gen = WorkloadGenerator(balanced_workload(NUM_KEYS), seed=3)
        for op in gen.ops(800):
            apply_operation(engine, op)
        total = engine.config.total_cache_bytes
        assert (
            engine.block_cache.budget_bytes + engine.range_cache.budget_bytes
            == total
        )
        for shard in engine.range_cache.shards():
            assert shard.used_bytes <= shard.budget_bytes

    def test_concurrent_clients(self):
        engine = sharded_engine()
        errors = []

        def client(base):
            try:
                for i in range(200):
                    key = key_of((base + i * 7) % NUM_KEYS)
                    value = engine.get(key)
                    if value is None:
                        errors.append((base, key))
            except Exception as exc:  # noqa: BLE001
                errors.append((base, repr(exc)))

        threads = [threading.Thread(target=client, args=(b,)) for b in (0, 250, 500, 750)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestUnsupervisedPretraining:
    def test_pretrain_unsupervised_runs_and_learns(self):
        from repro.core.adcache import ACTION_DIM
        from repro.rl.actor_critic import ActorCriticAgent
        from repro.rl.features import STATE_DIM
        from repro.rl.pretrain import pretrain_unsupervised
        from repro.workloads.generator import short_scan_workload

        agent = ActorCriticAgent(STATE_DIM, ACTION_DIM, hidden_dim=16, seed=2)

        def factory(shared_agent):
            tree = seed_database(NUM_KEYS, OPTS)
            config = AdCacheConfig(
                total_cache_bytes=128 * 1024, window_size=200, hidden_dim=16, seed=2
            )
            return AdCacheEngine(tree, config, agent=shared_agent)

        workloads = [
            WorkloadGenerator(short_scan_workload(NUM_KEYS), seed=4).ops(1000),
            WorkloadGenerator(balanced_workload(NUM_KEYS), seed=5).ops(1000),
        ]
        out = pretrain_unsupervised(agent, factory, workloads, ops_per_workload=1000)
        assert out is agent
        assert agent.updates_total > 0
