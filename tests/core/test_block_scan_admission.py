"""Partial admission applied to block-cache scan fills."""

from __future__ import annotations

from repro.bench.harness import seed_database
from repro.cache.admission import PartialScanAdmission
from repro.cache.block_cache import BlockCache
from repro.core.adcache import AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.core.engine import KVEngine
from repro.lsm.options import LSMOptions
from repro.workloads.keys import key_of

OPTS = LSMOptions(memtable_entries=32, entries_per_sstable=64)


def block_engine(block_scan_admission=None):
    tree = seed_database(2000, OPTS)
    cache = BlockCache(512 * OPTS.block_size, OPTS.block_size, tree.disk.read_block)
    return KVEngine(
        tree, block_cache=cache, block_scan_admission=block_scan_admission
    )


class TestBlockScanAdmission:
    def test_uncapped_scan_fills_many_blocks(self):
        engine = block_engine()
        engine.scan(key_of(100), 64)
        assert len(engine.block_cache) > 10

    def test_capped_scan_fills_bounded_blocks(self):
        # a=4 blocks fully admitted; b=0 admits nothing beyond.
        psa = PartialScanAdmission(a=4, b=0.0)
        engine = block_engine(block_scan_admission=psa)
        engine.scan(key_of(100), 64)  # expected 16 blocks > a
        assert len(engine.block_cache) == 0
        assert engine.block_cache.stats.rejections > 0

    def test_short_scan_fully_admitted(self):
        psa = PartialScanAdmission(a=8, b=0.0)
        engine = block_engine(block_scan_admission=psa)
        engine.scan(key_of(100), 16)  # 4 expected blocks <= a
        assert len(engine.block_cache) >= 4

    def test_scan_results_still_correct(self):
        psa = PartialScanAdmission(a=1, b=0.0)
        engine = block_engine(block_scan_admission=psa)
        capped = engine.scan(key_of(100), 32)
        uncapped = block_engine().scan(key_of(100), 32)
        assert capped == uncapped

    def test_point_lookups_unaffected(self):
        psa = PartialScanAdmission(a=1, b=0.0)
        engine = block_engine(block_scan_admission=psa)
        engine.get(key_of(50))
        assert len(engine.block_cache) >= 1  # points fill normally

    def test_hook_restored_after_scan(self):
        psa = PartialScanAdmission(a=1, b=0.0)
        engine = block_engine(block_scan_admission=psa)
        engine.scan(key_of(100), 32)
        assert engine.block_cache.admission_hook is None

    def test_adcache_wiring(self):
        tree = seed_database(2000, OPTS)
        config = AdCacheConfig(
            total_cache_bytes=512 * 1024,
            window_size=200,
            hidden_dim=16,
            enable_block_scan_admission=True,
            seed=1,
        )
        engine = AdCacheEngine(tree, config)
        assert engine.block_scan_admission is not None
        # Controller keeps it in block units.
        for i in range(250):
            engine.get(key_of(i % 2000))
        a_blocks = engine.block_scan_admission.a
        a_entries = engine.scan_admission.a
        assert a_blocks * OPTS.entries_per_block == a_entries or a_blocks <= a_entries
