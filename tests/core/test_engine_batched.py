"""Batched engine API: scalar parity, coalescing, batch-of-1 identity.

Every test builds *twin* engines from identically seeded databases and
compares the batched path against the scalar loop — the batched API's
contract is that values always match, a batch of one is bit-identical
(every counter), and larger batches only ever *save* metered I/O.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import seed_database
from repro.bench.strategies import build_engine
from repro.core.engine import KVEngine
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.keys import key_of, value_of

NUM_KEYS = 600


def _options():
    return LSMOptions(memtable_entries=32, entries_per_sstable=64)


def _twin_engines(strategy="adcache", cache_bytes=48 * 1024, seed=5):
    """Two engines over identically seeded trees (same strategy + seed)."""
    return tuple(
        build_engine(
            strategy, seed_database(NUM_KEYS, _options(), seed=7),
            cache_bytes, seed=seed,
        )
        for _ in range(2)
    )


def _counters(engine):
    """Every deterministic counter the batched path must preserve."""
    totals = engine.collector.totals()
    tree = engine.tree
    return {
        "points": totals.points,
        "point_hits": totals.range_point_hits,
        "kv_hits": totals.kv_hits,
        "scans": totals.scans,
        "scan_hits": totals.range_scan_hits,
        "writes": totals.writes,
        "disk_reads": tree.disk.block_reads_total,
        "bloom_negative": tree.bloom_negative_total,
        "bloom_fp": tree.bloom_false_positive_total,
        "compactions": totals.compactions,
    }


def _mixed_ops(count, seed=3, scan_ratio=0.2, write_ratio=0.2):
    spec = WorkloadSpec(
        num_keys=NUM_KEYS,
        get_ratio=1.0 - scan_ratio - write_ratio,
        short_scan_ratio=scan_ratio,
        write_ratio=write_ratio,
        short_scan_length=8,
        name="twin-mix",
    )
    return list(WorkloadGenerator(spec, seed=seed).ops(count))


class TestMultiGetParity:
    def test_values_match_scalar_loop_including_duplicates(self):
        batched, scalar = _twin_engines()
        keys = [key_of(i % 40) for i in range(0, 120, 3)]  # repeats hot keys
        for chunk in range(0, len(keys), 16):
            batch = keys[chunk : chunk + 16]
            assert batched.multi_get(batch) == [scalar.get(k) for k in batch]

    def test_unique_key_batch_counters_match_scalar(self):
        # With no within-batch duplicates the batched probe sequence is
        # exactly the scalar one: every hit/miss and bloom counter must
        # agree.  Metered disk reads may only *drop* — that saving
        # (coalesced duplicate-block fetches) is the batched path's point.
        batched, scalar = _twin_engines()
        keys = [key_of(i) for i in range(0, 512, 4)]
        for chunk in range(0, len(keys), 32):
            batch = keys[chunk : chunk + 32]
            assert batched.multi_get(batch) == [scalar.get(k) for k in batch]
        ours, theirs = _counters(batched), _counters(scalar)
        saved = theirs.pop("disk_reads") - ours.pop("disk_reads")
        assert saved >= 0
        assert ours == theirs

    def test_duplicate_keys_count_as_hits_and_share_one_probe(self):
        batched, scalar = _twin_engines()
        dup = key_of(17)
        batch = [dup] * 12
        values = batched.multi_get(batch)
        expected = scalar.get(dup)
        assert values == [expected] * 12
        totals = batched.collector.totals()
        assert totals.points == 12
        # Only the first occurrence could miss; the 11 copies are hits.
        assert totals.range_point_hits >= 11

    def test_missing_keys_return_none(self):
        batched, scalar = _twin_engines()
        batch = [f"zz-missing-{i:03d}" for i in range(10)] + [key_of(3)]
        assert batched.multi_get(batch) == [scalar.get(k) for k in batch]
        assert batched.multi_get(batch)[:10] == [None] * 10


class TestBlockCoalescing:
    def test_gets_in_one_block_cost_one_metered_read(self):
        # A bare engine (no caches) makes the metered disk the only read
        # absorber: the scalar loop pays one block read per get, the
        # batched pass memoizes fetched blocks for the whole batch.
        def bare_engine():
            tree = LSMTree(LSMOptions())  # 4 entries/block, one big SSTable
            tree.bulk_load(
                ((key_of(i), value_of(i)) for i in range(64)), seed=7
            )
            return KVEngine(tree)

        batch = [key_of(i) for i in range(8)]  # spans exactly 2 data blocks
        batched, scalar = bare_engine(), bare_engine()

        before = scalar.tree.disk.block_reads_total
        scalar_values = [scalar.get(k) for k in batch]
        scalar_reads = scalar.tree.disk.block_reads_total - before

        before = batched.tree.disk.block_reads_total
        values = batched.multi_get(batch)
        batched_reads = batched.tree.disk.block_reads_total - before

        assert values == scalar_values == [value_of(i) for i in range(8)]
        assert scalar_reads == 8  # one fetch per get, nothing caches them
        assert batched_reads == 2  # one fetch per distinct block

    def test_overlapping_scans_share_fetched_blocks(self):
        def bare_engine():
            tree = LSMTree(LSMOptions())
            tree.bulk_load(
                ((key_of(i), value_of(i)) for i in range(128)), seed=7
            )
            return KVEngine(tree)

        requests = [(key_of(0), 16), (key_of(4), 16), (key_of(8), 16)]
        batched, scalar = bare_engine(), bare_engine()

        scalar_results = [scalar.scan(s, ln) for s, ln in requests]
        scalar_reads = scalar.tree.disk.block_reads_total

        results = batched.multi_scan(requests)
        batched_reads = batched.tree.disk.block_reads_total

        assert results == scalar_results
        assert batched_reads < scalar_reads


class TestMultiScanParity:
    def test_results_match_scalar_loop(self):
        batched, scalar = _twin_engines()
        gen = WorkloadGenerator(
            WorkloadSpec(
                num_keys=NUM_KEYS, short_scan_ratio=1.0,
                short_scan_length=8, name="scans",
            ),
            seed=9,
        )
        ops = list(gen.ops(96))
        for chunk in range(0, len(ops), 12):
            requests = [(op.key, op.length) for op in ops[chunk : chunk + 12]]
            batch_results = batched.multi_scan(requests)
            scalar_results = [scalar.scan(s, ln) for s, ln in requests]
            assert batch_results == scalar_results
        assert (
            batched.tree.disk.block_reads_total
            <= scalar.tree.disk.block_reads_total
        )

    def test_covering_window_requests_count_as_hits(self):
        batched, _ = _twin_engines(strategy="block")  # no range cache
        total_before = batched.collector.totals()
        # The second request's window sits inside the first's result.
        results = batched.multi_scan([(key_of(100), 16), (key_of(104), 8)])
        assert [k for k, _ in results[1]] == [
            k for k, _ in results[0][4:12]
        ]
        totals = batched.collector.totals()
        assert totals.scans - total_before.scans == 2
        assert totals.range_scan_hits - total_before.range_scan_hits == 1


class TestMultiPutParity:
    def test_state_and_counters_match_scalar_puts(self):
        batched, scalar = _twin_engines()
        pairs = [(key_of(i), value_of(i, 9)) for i in range(50, 90)]
        batched.multi_put(pairs)
        for key, value in pairs:
            scalar.put(key, value)
        assert _counters(batched) == _counters(scalar)
        probe = [key for key, _ in pairs[::5]]
        assert batched.multi_get(probe) == [scalar.get(k) for k in probe]


class TestBatchOfOneIdentity:
    def test_batch_of_one_is_bit_identical_to_scalar(self):
        # The determinism contract: driving every op through the multi_*
        # API with singleton batches must reproduce the scalar engine's
        # counters exactly — double-run, not just value equality.
        batched, scalar = _twin_engines()
        for op in _mixed_ops(300):
            if op.kind == "get":
                assert batched.multi_get([op.key]) == [scalar.get(op.key)]
            elif op.kind == "scan":
                assert batched.multi_scan([(op.key, op.length)]) == [
                    scalar.scan(op.key, op.length)
                ]
            elif op.kind == "put":
                batched.multi_put([(op.key, op.value or "")])
                scalar.put(op.key, op.value or "")
            else:
                batched.delete(op.key)
                scalar.delete(op.key)
        assert _counters(batched) == _counters(scalar)

    @pytest.mark.parametrize("strategy", ["adcache", "block", "kv", "range"])
    def test_double_run_reproduces_across_compositions(self, strategy):
        ops = _mixed_ops(200)

        def run():
            engine = build_engine(
                strategy, seed_database(NUM_KEYS, _options(), seed=7),
                48 * 1024, seed=5,
            )
            for chunk in range(0, len(ops), 16):
                batch = ops[chunk : chunk + 16]
                gets = [op.key for op in batch if op.kind == "get"]
                if gets:
                    engine.multi_get(gets)
                scans = [
                    (op.key, op.length) for op in batch if op.kind == "scan"
                ]
                if scans:
                    engine.multi_scan(scans)
                writes = [
                    (op.key, op.value or "")
                    for op in batch
                    if op.kind == "put"
                ]
                if writes:
                    engine.multi_put(writes)
            return _counters(engine)

        assert run() == run()
