"""Runtime invariant sanitizer: seeded corruption must be caught.

Each test corrupts one structure's internals the way a real bug would
(byte over-charge, unlinked skip-list node, ghost policy entry, manifest
drift) and asserts ``check_invariants()`` raises an
:class:`~repro.errors.InvariantError` naming the broken invariant.
"""

import pytest

from repro import sanitize
from repro.cache.base import BudgetedCache
from repro.cache.block_cache import BlockCache
from repro.cache.intervals import IntervalSet
from repro.cache.kp_cache import KPCache
from repro.cache.kv_cache import KVCache
from repro.cache.lru import LRUPolicy
from repro.cache.range_cache import RangeCache
from repro.cache.sharded_range import ShardedRangeCache
from repro.cache.skiplist import SkipList
from repro.core.adcache import AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.errors import InvariantError
from repro.lsm.block import BlockHandle
from repro.lsm.options import LSMOptions
from repro.lsm.sstable import SSTable
from repro.lsm.tree import LSMTree
from repro.lsm.version import LevelState


def _budgeted(budget=1024, charge=64):
    return BudgetedCache(budget, LRUPolicy(), lambda _k, _v: charge)


def _filled_range_cache(n=20):
    cache = RangeCache(budget_bytes=64 * n, entry_charge=64, seed=3)
    for i in range(n):
        cache.insert_point(f"k{i:04d}", f"v{i}")
    return cache


# -- sampling gate -----------------------------------------------------------


def test_env_period_parsing(monkeypatch):
    cases = {
        "": 0,
        "0": 0,
        "false": 0,
        "off": 0,
        "1": sanitize.DEFAULT_PERIOD,
        "17": 17,
        "yes-please": sanitize.DEFAULT_PERIOD,
        "-3": 0,
    }
    for raw, expected in cases.items():
        monkeypatch.setenv("REPRO_SANITIZE", raw)
        assert sanitize.env_period() == expected, raw
    monkeypatch.delenv("REPRO_SANITIZE")
    assert sanitize.env_period() == 0
    assert sanitize.from_env() is None


class _CountingTarget:
    def __init__(self):
        self.checks = 0

    def check_invariants(self):
        self.checks += 1


def test_sanitizer_schedule_is_deterministic():
    a, b = sanitize.Sanitizer(period=7, seed=42), sanitize.Sanitizer(period=7, seed=42)
    ta, tb = _CountingTarget(), _CountingTarget()
    schedule_a, schedule_b = [], []
    for i in range(500):
        a.after_mutation(ta)
        b.after_mutation(tb)
        schedule_a.append(ta.checks)
        schedule_b.append(tb.checks)
    assert schedule_a == schedule_b
    assert a.checks_run == ta.checks > 0


def test_sanitizer_period_one_checks_every_mutation():
    gate = sanitize.Sanitizer(period=1, seed=0)
    target = _CountingTarget()
    for _ in range(10):
        gate.after_mutation(target)
    assert target.checks == 10


def test_sanitizer_mean_gap_tracks_period():
    gate = sanitize.Sanitizer(period=10, seed=1)
    target = _CountingTarget()
    for _ in range(10_000):
        gate.after_mutation(target)
    # Gaps are uniform on [1, 19]: mean 10, so ~1000 checks +- noise.
    assert 800 <= target.checks <= 1200


# -- BudgetedCache corruptions -----------------------------------------------


def test_budgeted_cache_clean_state_passes():
    cache = _budgeted()
    for i in range(10):
        cache.put(f"k{i}", "v")
    cache.check_invariants()


def test_budgeted_cache_detects_overcharged_entry():
    cache = _budgeted()
    cache.put("a", "v")
    cache._used += 64  # simulate a lost decrement on eviction
    with pytest.raises(InvariantError, match="byte accounting drift"):
        cache.check_invariants()


def test_budgeted_cache_detects_resting_over_budget():
    cache = _budgeted(budget=1024)
    cache.put("a", "v")
    cache._budget = 32  # resize that forgot to evict
    with pytest.raises(InvariantError, match="over budget at rest"):
        cache.check_invariants()


def test_budgeted_cache_detects_ghost_policy_entry():
    cache = _budgeted()
    cache.put("a", "v")
    cache._policy.record_insert("ghost")  # policy knows a key the dict lost
    with pytest.raises(InvariantError, match="policy/dict divergence"):
        cache.check_invariants()


def test_budgeted_cache_detects_untracked_resident_key():
    cache = _budgeted()
    cache.put("a", "v")
    cache.put("b", "v")
    cache._policy.record_remove("a")  # resident key vanished from policy
    with pytest.raises(InvariantError, match="divergence|unknown to the"):
        cache.check_invariants()


def test_enabled_sanitizer_trips_on_next_mutation():
    cache = _budgeted()
    cache.enable_sanitizer(period=1, seed=0)
    cache.put("a", "v")  # clean mutation passes
    cache._used += 7
    with pytest.raises(InvariantError, match="byte accounting drift"):
        cache.put("b", "v")


# -- skip list corruptions ---------------------------------------------------


def test_skiplist_clean_state_passes():
    sl = SkipList(seed=5)
    for i in range(200):
        sl.insert(f"k{i:05d}", str(i))
    for i in range(0, 200, 3):
        sl.remove(f"k{i:05d}")
    sl.check_invariants()


def test_skiplist_detects_unlinked_node():
    sl = SkipList(seed=5)
    for i in range(50):
        sl.insert(f"k{i:02d}", str(i))
    # Unlink the first data node at level 0 only, without accounting —
    # either the size drifts or a taller tower loses its ground level.
    node = sl._head.forward[0]
    sl._head.forward[0] = node.forward[0]
    with pytest.raises(InvariantError, match="SkipList"):
        sl.check_invariants()


def test_skiplist_detects_size_drift():
    sl = SkipList(seed=5)
    sl.insert("a", "1")
    sl._size += 1
    with pytest.raises(InvariantError, match="size drift"):
        sl.check_invariants()


def test_skiplist_detects_broken_ordering():
    sl = SkipList(seed=5)
    sl.insert("a", "1")
    sl.insert("b", "2")
    sl._head.forward[0].key = "z"  # out-of-order overwrite
    with pytest.raises(InvariantError, match="ordering broken"):
        sl.check_invariants()


# -- interval set corruptions ------------------------------------------------


def test_intervalset_detects_inverted_and_overlapping():
    ivs = IntervalSet()
    ivs.add("a", "f")
    ivs._starts.append("z")
    ivs._ends.append("m")
    with pytest.raises(InvariantError, match="inverted"):
        ivs.check_invariants()
    ivs2 = IntervalSet()
    ivs2._starts.extend(["a", "c"])
    ivs2._ends.extend(["d", "f"])
    with pytest.raises(InvariantError, match="overlap"):
        ivs2.check_invariants()


# -- range cache corruptions -------------------------------------------------


def test_range_cache_clean_state_passes():
    cache = _filled_range_cache()
    cache.insert_range("k0000", [(f"k{i:04d}", "v") for i in range(5)])
    cache.check_invariants()


def test_range_cache_detects_leaked_ghost_entry():
    cache = _filled_range_cache()
    cache._policy.record_insert("ghost-key")
    with pytest.raises(InvariantError, match="policy/skip-list divergence"):
        cache.check_invariants()


def test_range_cache_detects_byte_drift():
    cache = _filled_range_cache()
    cache._used -= 64
    with pytest.raises(InvariantError, match="byte accounting drift"):
        cache.check_invariants()


# -- facade caches -----------------------------------------------------------


def test_kv_cache_detects_inner_corruption():
    cache = KVCache(budget_bytes=4096, entry_charge=64)
    cache.put("a", "v")
    cache._cache._used += 1
    with pytest.raises(InvariantError, match="byte accounting drift"):
        cache.check_invariants()


def test_kp_cache_detects_nonuniform_charge():
    cache = KPCache(budget_bytes=4096, is_live=lambda _sst: True)
    cache.remember("a", BlockHandle(1, 0))
    key, (value, _charge) = next(iter(cache._cache._data.items()))
    cache._cache._data[key] = (value, 99)
    cache._cache._used += 99 - cache.entry_charge
    with pytest.raises(InvariantError, match="uniform charge"):
        cache.check_invariants()


def test_block_cache_detects_misrouted_entry():
    cache = BlockCache(
        budget_bytes=16 * 4096,
        block_size=4096,
        backing_fetch=lambda handle: None,
        num_shards=4,
    )
    handle = BlockHandle(1, 0)
    wrong = (cache._shard_of(handle) + 1) % 4
    cache._shards[wrong].put(handle, object())
    with pytest.raises(InvariantError, match="misrouted entry"):
        cache.check_invariants()


def test_sharded_range_cache_detects_misrouted_key():
    cache = ShardedRangeCache(
        budget_bytes=64 * 64, boundaries=["m"], entry_charge=64, seed=1
    )
    cache.insert_point("apple", "v")
    cache.insert_point("zebra", "v")
    cache.check_invariants()
    # Plant a key beyond the first shard's upper bound directly.
    cache._shards[0]._insert_entry("zzz", "v")
    with pytest.raises(InvariantError, match="misrouted entry"):
        cache.check_invariants()


# -- LSM manifest corruptions ------------------------------------------------


def _table(sst_id, keys):
    return SSTable.from_entries(sst_id, [(k, "v") for k in keys], entries_per_block=4)


def test_level_state_detects_duplicate_sst_id():
    levels = LevelState(max_levels=4)
    levels.add_to_level(1, _table(1, ["a", "b"]))
    levels.add_to_level(2, _table(1, ["c", "d"]))
    with pytest.raises(InvariantError, match="appears at both"):
        levels.check_invariants()


def test_level_state_detects_overlap():
    levels = LevelState(max_levels=4)
    levels.add_to_level(1, _table(1, ["a", "m"]))
    levels._levels[1].append(_table(2, ["f", "z"]))  # bypass the guarded insert
    with pytest.raises(InvariantError, match="overlap"):
        levels.check_invariants()


def test_level_state_detects_dead_manifest_file():
    levels = LevelState(max_levels=4)
    levels.add_to_level(1, _table(9, ["a", "b"]))
    with pytest.raises(InvariantError, match="gone from disk"):
        levels.check_invariants(is_live=lambda sst_id: False)


def test_lsm_tree_invariants_pass_after_real_traffic():
    tree = LSMTree(LSMOptions(memtable_entries=16, entries_per_sstable=32))
    for i in range(400):
        tree.put(f"k{i:05d}", f"v{i}")
    tree.check_invariants()
    tree.levels.check_invariants(is_live=tree.disk.has)


# -- config wiring -----------------------------------------------------------


def test_config_sanitize_flag_enables_cache_sanitizers(monkeypatch):
    # The config flag must work (and the default must stay off) no
    # matter what the ambient REPRO_SANITIZE is set to.
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    tree = LSMTree(LSMOptions(memtable_entries=16, entries_per_sstable=32))
    engine = AdCacheEngine(
        tree, AdCacheConfig(total_cache_bytes=64 * 1024, sanitize=True)
    )
    assert engine.block_cache.sanitizing
    assert engine.range_cache.sanitizing
    assert engine._sanitize_sweep_due()
    plain = AdCacheEngine(
        LSMTree(LSMOptions(memtable_entries=16, entries_per_sstable=32)),
        AdCacheConfig(total_cache_bytes=64 * 1024),
    )
    assert not plain.block_cache.sanitizing
    assert not plain._sanitize_sweep_due()
