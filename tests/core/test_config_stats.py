"""AdCacheConfig validation and the window stats collector."""

from __future__ import annotations

import pytest

from repro.core.config import AdCacheConfig
from repro.core.stats import StatsCollector, WindowStats
from repro.errors import ConfigError


class TestConfig:
    def test_defaults(self):
        cfg = AdCacheConfig()
        # Paper-faithful structural defaults.
        assert cfg.window_size == 1000
        assert cfg.hidden_dim == 256
        assert cfg.sketch_saturation == 8
        # Simulator-scale learning defaults (see config docstring).
        assert cfg.alpha == 0.3
        assert cfg.actor_lr == cfg.critic_lr == 1e-2
        assert cfg.reward_mode == "level"
        assert cfg.gamma == 0.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("total_cache_bytes", -1),
            ("initial_range_ratio", 1.5),
            ("window_size", 0),
            ("alpha", -0.1),
            ("actor_lr", 0.0),
            ("gamma", -0.1),
            ("a_max", 0),
            ("point_threshold_max", 0.0),
            ("num_shards", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigError):
            AdCacheConfig(**{field: value})


class TestWindowStats:
    def test_derived_ratios(self):
        w = WindowStats(ops=10, points=5, scans=3, writes=2, scan_length_sum=48)
        assert w.point_ratio == 0.5
        assert w.scan_ratio == 0.3
        assert w.write_ratio == 0.2
        assert w.avg_scan_length == 16.0
        assert w.reads == 8

    def test_empty_window_safe(self):
        w = WindowStats()
        assert w.point_ratio == 0.0
        assert w.avg_scan_length == 0.0
        assert w.range_hit_rate == 0.0
        assert w.block_hit_rate == 0.0

    def test_hit_rates(self):
        w = WindowStats(
            ops=4, points=2, scans=2, range_point_hits=1, range_scan_hits=1,
            block_hits=3, block_misses=1,
        )
        assert w.range_hit_rate == 0.5
        assert w.block_hit_rate == 0.75


class TestCollector:
    def seal(self, collector, **kw):
        defaults = dict(
            io_miss=0, block_hits=0, block_misses=0, num_levels=1,
            level0_runs=0, range_occupancy=0.0, block_occupancy=0.0,
            range_ratio=0.5,
        )
        defaults.update(kw)
        return collector.end_window(**defaults)

    def test_per_op_accounting(self):
        c = StatsCollector()
        c.note_point(range_hit=True)
        c.note_scan(16, range_hit=False)
        c.note_write()
        c.note_delete()
        assert c.ops_in_window == 4
        w = self.seal(c, io_miss=7)
        assert (w.points, w.scans, w.writes, w.deletes) == (1, 1, 1, 1)
        assert w.range_point_hits == 1 and w.range_scan_hits == 0
        assert w.io_miss == 7

    def test_window_resets(self):
        c = StatsCollector()
        c.note_point(range_hit=False)
        self.seal(c)
        assert c.ops_in_window == 0
        w2 = self.seal(c)
        assert w2.ops == 0 and w2.window_index == 1

    def test_compactions_attributed_to_window(self):
        c = StatsCollector()
        c.note_compaction(blocks_invalidated=10)
        c.note_compaction(blocks_invalidated=5)
        w = self.seal(c)
        assert w.compactions == 2 and w.blocks_invalidated == 15
        w2 = self.seal(c)
        assert w2.compactions == 0

    def test_lifetime_accumulates(self):
        c = StatsCollector()
        c.note_point(range_hit=True)
        self.seal(c, io_miss=3)
        c.note_scan(16, range_hit=True)
        self.seal(c, io_miss=2)
        assert c.lifetime.points == 1
        assert c.lifetime.scans == 1
        assert c.lifetime.io_miss == 5

    def test_totals_include_partial_window(self):
        c = StatsCollector()
        c.note_point(range_hit=False)
        self.seal(c)
        c.note_write()  # in-progress window
        totals = c.totals()
        assert totals.points == 1 and totals.writes == 1
