"""AdCacheConfig validation and the window stats collector."""

from __future__ import annotations

import math

import pytest

from repro.core.config import AdCacheConfig
from repro.core.stats import StatsCollector, WindowStats, merge_windows
from repro.errors import ConfigError


class TestConfig:
    def test_defaults(self):
        cfg = AdCacheConfig()
        # Paper-faithful structural defaults.
        assert cfg.window_size == 1000
        assert cfg.hidden_dim == 256
        assert cfg.sketch_saturation == 8
        # Simulator-scale learning defaults (see config docstring).
        assert cfg.alpha == 0.3
        assert cfg.actor_lr == cfg.critic_lr == 1e-2
        assert cfg.reward_mode == "level"
        assert cfg.gamma == 0.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("total_cache_bytes", -1),
            ("initial_range_ratio", 1.5),
            ("window_size", 0),
            ("alpha", -0.1),
            ("actor_lr", 0.0),
            ("gamma", -0.1),
            ("a_max", 0),
            ("point_threshold_max", 0.0),
            ("num_shards", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigError):
            AdCacheConfig(**{field: value})


class TestWindowStats:
    def test_derived_ratios(self):
        w = WindowStats(ops=10, points=5, scans=3, writes=2, scan_length_sum=48)
        assert w.point_ratio == 0.5
        assert w.scan_ratio == 0.3
        assert w.write_ratio == 0.2
        assert w.avg_scan_length == 16.0
        assert w.reads == 8

    def test_empty_window_safe(self):
        w = WindowStats()
        assert w.point_ratio == 0.0
        assert w.avg_scan_length == 0.0
        assert w.range_hit_rate == 0.0
        assert w.block_hit_rate == 0.0

    def test_hit_rates(self):
        w = WindowStats(
            ops=4, points=2, scans=2, range_point_hits=1, range_scan_hits=1,
            block_hits=3, block_misses=1,
        )
        assert w.range_hit_rate == 0.5
        assert w.block_hit_rate == 0.75


class TestMergeWindows:
    def test_empty_list_merges_to_default_window(self):
        assert merge_windows([]) == WindowStats()

    def test_counters_sum_and_snapshots_weight_by_ops(self):
        a = WindowStats(
            ops=300, io_miss=30, num_levels=2, level0_runs=1, window_index=3,
            range_occupancy=0.9, block_occupancy=0.1, range_ratio=0.8,
        )
        b = WindowStats(
            ops=100, io_miss=10, num_levels=4, level0_runs=3, window_index=4,
            range_occupancy=0.1, block_occupancy=0.5, range_ratio=0.4,
        )
        m = merge_windows([a, b])
        assert m.ops == 400 and m.io_miss == 40
        assert m.range_occupancy == pytest.approx(0.9 * 0.75 + 0.1 * 0.25)
        assert m.block_occupancy == pytest.approx(0.1 * 0.75 + 0.5 * 0.25)
        assert m.range_ratio == pytest.approx(0.8 * 0.75 + 0.4 * 0.25)
        # Structural maxima, not means: the fleet is as deep as its
        # deepest shard.
        assert m.num_levels == 4 and m.level0_runs == 3
        assert m.window_index == 4

    def test_idle_fleet_falls_back_to_plain_mean(self):
        a = WindowStats(ops=0, range_occupancy=0.2, range_ratio=0.4)
        b = WindowStats(ops=0, range_occupancy=0.6, range_ratio=0.6)
        m = merge_windows([a, b])
        assert m.range_occupancy == pytest.approx(0.4)
        assert m.range_ratio == pytest.approx(0.5)

    def test_poisoned_shard_cannot_nan_the_fleet_view(self):
        poisoned = WindowStats(
            ops=100, io_miss=5,
            range_occupancy=float("inf"), block_occupancy=float("nan"),
            range_ratio=0.5,
        )
        healthy = WindowStats(
            ops=100, io_miss=7,
            range_occupancy=0.3, block_occupancy=0.4, range_ratio=0.7,
        )
        m = merge_windows([poisoned, healthy])
        assert m.io_miss == 12  # counters still sum
        assert m.range_occupancy == pytest.approx(0.3)
        assert m.block_occupancy == pytest.approx(0.4)
        assert m.range_ratio == pytest.approx(0.6)
        assert all(
            math.isfinite(v)
            for v in (m.range_occupancy, m.block_occupancy, m.range_ratio)
        )

    def test_negative_ops_window_contributes_no_weight(self):
        wrapped = WindowStats(ops=-5, range_occupancy=0.9)
        good = WindowStats(ops=10, range_occupancy=0.1)
        m = merge_windows([wrapped, good])
        assert m.range_occupancy == pytest.approx(0.1)

    def test_to_dict_from_dict_roundtrip(self):
        w = WindowStats(
            ops=10, points=4, scans=3, io_miss=7, range_ratio=0.6,
            window_index=7, compactions=2, blocks_invalidated=9,
        )
        assert WindowStats.from_dict(w.to_dict()) == w

    def test_from_dict_tolerates_missing_and_unknown_keys(self):
        w = WindowStats.from_dict({"ops": 5, "unknown_future_field": 1})
        assert w.ops == 5 and w.points == 0


class TestCollector:
    def seal(self, collector, **kw):
        defaults = dict(
            io_miss=0, block_hits=0, block_misses=0, num_levels=1,
            level0_runs=0, range_occupancy=0.0, block_occupancy=0.0,
            range_ratio=0.5,
        )
        defaults.update(kw)
        return collector.end_window(**defaults)

    def test_per_op_accounting(self):
        c = StatsCollector()
        c.note_point(range_hit=True)
        c.note_scan(16, range_hit=False)
        c.note_write()
        c.note_delete()
        assert c.ops_in_window == 4
        w = self.seal(c, io_miss=7)
        assert (w.points, w.scans, w.writes, w.deletes) == (1, 1, 1, 1)
        assert w.range_point_hits == 1 and w.range_scan_hits == 0
        assert w.io_miss == 7

    def test_window_resets(self):
        c = StatsCollector()
        c.note_point(range_hit=False)
        self.seal(c)
        assert c.ops_in_window == 0
        w2 = self.seal(c)
        assert w2.ops == 0 and w2.window_index == 1

    def test_compactions_attributed_to_window(self):
        c = StatsCollector()
        c.note_compaction(blocks_invalidated=10)
        c.note_compaction(blocks_invalidated=5)
        w = self.seal(c)
        assert w.compactions == 2 and w.blocks_invalidated == 15
        w2 = self.seal(c)
        assert w2.compactions == 0

    def test_lifetime_accumulates(self):
        c = StatsCollector()
        c.note_point(range_hit=True)
        self.seal(c, io_miss=3)
        c.note_scan(16, range_hit=True)
        self.seal(c, io_miss=2)
        assert c.lifetime.points == 1
        assert c.lifetime.scans == 1
        assert c.lifetime.io_miss == 5

    def test_totals_include_partial_window(self):
        c = StatsCollector()
        c.note_point(range_hit=False)
        self.seal(c)
        c.note_write()  # in-progress window
        totals = c.totals()
        assert totals.points == 1 and totals.writes == 1
