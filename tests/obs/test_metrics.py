"""Metrics registry: kind checking, window deltas, merges, exports."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ObsError
from repro.obs import names as N
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    export_fleet_metrics,
    merge_registries,
    merge_window_snapshots,
)
from repro.obs.schema import validate_metrics_lines


class TestRegistry:
    def test_unregistered_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError, match="unregistered"):
            reg.inc("nope.not.registered")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError, match="counter"):
            reg.set_gauge(N.WINDOW_OPS, 1.0)
        with pytest.raises(ObsError, match="gauge"):
            reg.inc(N.G_REWARD)
        with pytest.raises(ObsError, match="histogram"):
            reg.inc(N.H_WINDOW_IO_MISS)

    def test_every_l2_name_is_registered_and_listed(self):
        # The tiered serving path emits these; a typo'd or unregistered
        # name would fail at inc() time and at --validate, so the full
        # vocabulary must be in the closed registry (and thus rendered
        # by `repro report --list-metrics`).
        from repro.obs.report import list_metrics

        counters = (
            N.L2_HITS,
            N.L2_MISSES,
            N.L2_DEMOTIONS,
            N.L2_ADMITS,
            N.L2_REJECTS,
            N.L2_GHOST_HITS_RECENCY,
            N.L2_GHOST_HITS_FREQUENCY,
            N.L2_EVICTIONS,
        )
        reg = MetricsRegistry()
        for name in counters:
            assert name in N.METRICS
            reg.inc(name)  # registered as a counter
        for gauge in (N.G_L2_BUDGET_SHARE, N.G_L2_OCCUPANCY):
            assert gauge in N.METRICS
            reg.set_gauge(gauge, 0.5)
        assert N.EV_L2_SPLIT in N.EVENT_KINDS
        listing = list_metrics()
        for name in counters + (N.G_L2_BUDGET_SHARE, N.G_L2_OCCUPANCY):
            assert name in listing

    def test_window_snapshot_holds_deltas_not_totals(self):
        reg = MetricsRegistry()
        reg.inc(N.WINDOW_OPS, 100)
        first = reg.snapshot_window(0, ts_us=10.0)
        reg.inc(N.WINDOW_OPS, 40)
        second = reg.snapshot_window(1, ts_us=20.0)
        assert first.counters[N.WINDOW_OPS] == 100
        assert second.counters[N.WINDOW_OPS] == 40
        assert reg.counter_total(N.WINDOW_OPS) == 140

    def test_zero_delta_counters_omitted_from_snapshot(self):
        reg = MetricsRegistry()
        reg.inc(N.WINDOW_OPS, 5)
        reg.snapshot_window(0, ts_us=1.0)
        snap = reg.snapshot_window(1, ts_us=2.0)
        assert N.WINDOW_OPS not in snap.counters

    def test_gauge_last_write_wins_and_persists(self):
        reg = MetricsRegistry()
        reg.set_gauge(N.G_REWARD, 0.1)
        reg.set_gauge(N.G_REWARD, 0.7)
        snap = reg.snapshot_window(0, ts_us=1.0)
        assert snap.gauges[N.G_REWARD] == 0.7
        # Gauges are point-in-time: they carry forward unless re-set.
        assert reg.snapshot_window(1, ts_us=2.0).gauges[N.G_REWARD] == 0.7

    def test_export_jsonl_validates(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc(N.WINDOW_OPS, 10)
        reg.set_gauge(N.G_RANGE_RATIO, 0.5)
        reg.observe(N.H_WINDOW_IO_MISS, 12)
        reg.snapshot_window(0, ts_us=5.0)
        path = tmp_path / "metrics.jsonl"
        reg.export_jsonl(str(path))
        objs = [json.loads(line) for line in path.read_text().splitlines()]
        assert validate_metrics_lines(objs, "metrics.jsonl") == []
        assert objs[0]["type"] == "meta" and objs[-1]["type"] == "totals"


class TestHistogram:
    def test_small_values_share_bucket_zero(self):
        h = Histogram(growth=2.0, min_value=1.0)
        h.observe(0)
        h.observe(1)
        assert h.count == 2
        assert h.quantile(1.0) == 1.0

    def test_rejects_negative_and_non_finite(self):
        h = Histogram()
        with pytest.raises(ObsError):
            h.observe(-1)
        with pytest.raises(ObsError):
            h.observe(float("nan"))

    def test_quantile_and_mean(self):
        h = Histogram(growth=2.0, min_value=1.0)
        for v in (1, 2, 4, 8):
            h.observe(v)
        assert h.mean == pytest.approx(15 / 4)
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 8.0
        assert h.max_value == 8.0

    def test_merge_requires_same_geometry(self):
        a = Histogram(growth=2.0)
        b = Histogram(growth=4.0)
        with pytest.raises(ObsError, match="geometry"):
            a.merge(b)

    def test_merge_folds_counts(self):
        a, b = Histogram(), Histogram()
        a.observe(3)
        b.observe(100)
        a.merge(b)
        assert a.count == 2 and a.max_value == 100


def _snap(index, ops, ratio=None, ts=0.0, extra=None):
    from repro.obs.metrics import WindowSnapshot

    counters = {N.WINDOW_OPS: ops} if ops else {}
    counters.update(extra or {})
    gauges = {} if ratio is None else {N.G_RANGE_RATIO: ratio}
    return WindowSnapshot(index=index, ts_us=ts, counters=counters, gauges=gauges)


class TestMergeWindowSnapshots:
    def test_counters_sum_gauges_weight_by_ops(self):
        merged = merge_window_snapshots(
            [[_snap(0, 300, ratio=0.8)], [_snap(0, 100, ratio=0.4)]]
        )
        assert len(merged) == 1
        assert merged[0].counters[N.WINDOW_OPS] == 400
        assert merged[0].gauges[N.G_RANGE_RATIO] == pytest.approx(0.7)

    def test_idle_fleet_falls_back_to_plain_mean(self):
        merged = merge_window_snapshots(
            [[_snap(0, 0, ratio=0.2)], [_snap(0, 0, ratio=0.6)]]
        )
        assert merged[0].gauges[N.G_RANGE_RATIO] == pytest.approx(0.4)

    def test_non_finite_gauges_excluded(self):
        merged = merge_window_snapshots(
            [[_snap(0, 100, ratio=float("nan"))], [_snap(0, 100, ratio=0.3)]]
        )
        assert merged[0].gauges[N.G_RANGE_RATIO] == pytest.approx(0.3)

    def test_ragged_streams_merge_without_padding(self):
        merged = merge_window_snapshots(
            [[_snap(0, 10), _snap(1, 20, ts=9.0)], [_snap(0, 5, ts=4.0)]]
        )
        assert len(merged) == 2
        assert merged[0].counters[N.WINDOW_OPS] == 15
        assert merged[1].counters[N.WINDOW_OPS] == 20
        assert merged[1].ts_us == 9.0

    def test_empty_input(self):
        assert merge_window_snapshots([]) == []


class TestFleetExport:
    def _registry(self, ops, sample):
        reg = MetricsRegistry()
        reg.inc(N.WINDOW_OPS, ops)
        reg.observe(N.H_WINDOW_IO_MISS, sample)
        reg.set_gauge(N.G_RANGE_RATIO, 0.5)
        reg.snapshot_window(0, ts_us=float(ops))
        return reg

    def test_merge_registries_sums_counters(self):
        windows, counters = merge_registries(
            [self._registry(10, 1), self._registry(30, 2)]
        )
        assert len(windows) == 1
        assert counters[N.WINDOW_OPS] == 40

    def test_export_fleet_metrics_validates_and_merges(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        export_fleet_metrics(
            [self._registry(10, 3), self._registry(30, 200)], str(path)
        )
        objs = [json.loads(line) for line in path.read_text().splitlines()]
        assert validate_metrics_lines(objs, "metrics.jsonl") == []
        totals = objs[-1]
        assert totals["counters"][N.WINDOW_OPS] == 40
        hist = totals["histograms"][N.H_WINDOW_IO_MISS]
        assert hist["count"] == 2 and hist["max"] == 200
