"""Event trace ring buffer: bounds, drop accounting, fleet merge."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsError
from repro.obs import names as N
from repro.obs.schema import validate_events_lines
from repro.obs.trace import EventTrace, export_fleet_events


class TestEventTrace:
    def test_unknown_kind_rejected(self):
        trace = EventTrace()
        with pytest.raises(ObsError, match="unknown event kind"):
            trace.record(0.0, "made_up_kind")

    def test_ring_bounds_and_counts_drops(self):
        trace = EventTrace(capacity=3)
        for i in range(5):
            trace.record(float(i), N.EV_FLUSH, {"sst": i})
        assert len(trace) == 3
        assert trace.dropped_total == 2
        assert trace.next_seq == 5
        # The survivors are the newest three, in order.
        assert [e.fields["sst"] for e in trace.events()] == [2, 3, 4]

    def test_kind_counts(self):
        trace = EventTrace()
        trace.record(0.0, N.EV_FLUSH)
        trace.record(1.0, N.EV_FLUSH)
        trace.record(2.0, N.EV_COMPACTION)
        assert trace.kind_counts() == {N.EV_COMPACTION: 1, N.EV_FLUSH: 2}

    def test_export_jsonl_validates_and_reports_drops(self, tmp_path):
        trace = EventTrace(capacity=2)
        for i in range(3):
            trace.record(float(i), N.EV_WINDOW, {"index": i})
        path = tmp_path / "events.jsonl"
        trace.export_jsonl(str(path))
        objs = [json.loads(line) for line in path.read_text().splitlines()]
        assert validate_events_lines(objs, "events.jsonl") == []
        assert objs[0]["dropped"] == 1 and objs[0]["recorded"] == 3


class TestFleetEvents:
    def test_merged_file_is_shard_tagged_and_monotone(self, tmp_path):
        a, b = EventTrace(), EventTrace()
        a.record(5.0, N.EV_FLUSH, {"sst": 1})
        a.record(20.0, N.EV_COMPACTION)
        b.record(5.0, N.EV_FLUSH, {"sst": 9})
        b.record(10.0, N.EV_WINDOW, {"index": 0})
        path = tmp_path / "events.jsonl"
        export_fleet_events([a, b], str(path))
        objs = [json.loads(line) for line in path.read_text().splitlines()]
        assert validate_events_lines(objs, "events.jsonl") == []
        events = objs[1:]
        # Interleave by (ts, shard, seq); shard 0 wins the ts=5.0 tie.
        assert [(e["ts_us"], e["fields"]["shard"]) for e in events] == [
            (5.0, 0), (5.0, 1), (10.0, 1), (20.0, 0)
        ]
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert objs[0]["recorded"] == 4
