"""End-to-end instrumentation: a recorded run exports coherent
artifacts and recording never perturbs the simulation itself."""

from __future__ import annotations

from repro.bench.harness import apply_operation
from repro.core.adcache import AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.obs import names as N
from repro.obs.recorder import ObsRecorder
from repro.obs.report import render_report
from repro.obs.schema import validate_export
from repro.serve.simulator import ServeConfig, run_serve
from repro.workloads.generator import WorkloadGenerator, balanced_workload
from repro.workloads.keys import key_of, value_of


def small_engine(seed=1, num_keys=1500):
    opts = LSMOptions(memtable_entries=32, entries_per_sstable=64)
    tree = LSMTree(opts)
    tree.bulk_load((key_of(i), value_of(i)) for i in range(num_keys))
    config = AdCacheConfig(
        total_cache_bytes=1 << 20, window_size=100, hidden_dim=32, seed=seed
    )
    return AdCacheEngine(tree, config=config)


def drive(engine, ops=650, seed=2, num_keys=1500):
    gen = WorkloadGenerator(balanced_workload(num_keys), seed=seed)
    for op in gen.ops(ops):
        apply_operation(engine, op)


class TestEngineInstrumentation:
    def test_window_counters_match_engine_accounting(self):
        engine = small_engine()
        recorder = ObsRecorder()
        engine.attach_recorder(recorder)
        drive(engine, ops=650)
        engine.flush_window()  # seal the trailing partial window
        metrics = recorder.metrics
        assert metrics.counter_total(N.WINDOW_OPS) == 650
        lifetime = engine.collector.lifetime
        assert metrics.counter_total(N.WINDOW_IO_MISS) == lifetime.io_miss
        assert metrics.counter_total(N.WINDOW_POINTS) == lifetime.points
        assert metrics.counter_total(N.WINDOW_SCANS) == lifetime.scans
        assert metrics.counter_total(N.LSM_FLUSHES) == engine.tree.flushes_total
        # 6 full windows + the flushed partial one.
        assert len(metrics.windows) == 7
        assert metrics.counter_total(N.CTRL_DECISIONS) == 7

    def test_recording_does_not_perturb_the_run(self):
        plain = small_engine()
        observed = small_engine()
        observed.attach_recorder(ObsRecorder())
        drive(plain)
        drive(observed)
        assert plain.collector.lifetime.to_dict() == observed.collector.lifetime.to_dict()
        assert plain.controller.range_ratio == observed.controller.range_ratio
        assert (
            plain.block_cache.stats.hits
            == observed.block_cache.stats.hits
        )
        assert plain.tree.flushes_total == observed.tree.flushes_total

    def test_export_validates_and_report_renders(self, tmp_path):
        engine = small_engine()
        recorder = ObsRecorder()
        engine.attach_recorder(recorder)
        drive(engine)
        engine.flush_window()
        recorder.export(str(tmp_path))
        assert validate_export(str(tmp_path)) == []
        report = render_report(str(tmp_path))
        for section in ("trajectory", "counter", "event", "decision"):
            assert section in report


class TestServeInstrumentation:
    CONFIG = dict(
        total_ops=2500, num_clients=4, num_shards=2, seed=3,
        num_keys=1500, window_size=250,
    )

    def test_fingerprint_identical_with_obs_enabled(self):
        base = run_serve(ServeConfig(**self.CONFIG))
        observed = run_serve(ServeConfig(obs=True, **self.CONFIG))
        assert base.fingerprint() == observed.fingerprint()
        assert len(observed.obs_recorders) == 2
        assert observed.obs_fleet_windows  # the reduction ran

    def test_fleet_export_validates_per_shard_and_fleet(self, tmp_path):
        result = run_serve(ServeConfig(obs=True, **self.CONFIG))
        result.export_obs(str(tmp_path))
        assert validate_export(str(tmp_path)) == []
        for shard in ("shard0", "shard1"):
            assert validate_export(str(tmp_path / shard)) == []
        # Fleet window ops equal the sum of per-shard sealed windows.
        fleet_ops = sum(
            w.counters.get(N.WINDOW_OPS, 0) for w in result.obs_fleet_windows
        )
        shard_ops = sum(
            r.metrics.counter_total(N.WINDOW_OPS) for r in result.obs_recorders
        )
        assert fleet_ops == shard_ops
