"""Recorder facade: null no-op path, live recorder, export structure."""

from __future__ import annotations

import json

from repro.obs import names as N
from repro.obs.recorder import (
    AUDIT_FILE,
    EVENTS_FILE,
    MANIFEST_FILE,
    METRICS_FILE,
    NULL_RECORDER,
    NullRecorder,
    ObsRecorder,
)
from repro.obs.schema import validate_export


class TestNullRecorder:
    def test_disabled_and_shared(self):
        assert NullRecorder.enabled is False
        assert NULL_RECORDER.enabled is False

    def test_every_method_is_a_noop(self):
        r = NullRecorder()
        # No validation, no state: even an unregistered name is ignored.
        assert r.inc("anything") is None
        assert r.set_gauge("anything", 1.0) is None
        assert r.observe("anything", 1.0) is None
        assert r.event("anything", key=1) is None
        assert r.advance_to(5.0) is None
        assert r.end_window(0) is None


class TestObsRecorder:
    def test_clock_is_monotone(self):
        r = ObsRecorder()
        r.advance_to(10.0)
        r.advance_to(5.0)  # going backward is ignored
        assert r.now_us == 10.0

    def test_events_stamped_with_current_time(self):
        r = ObsRecorder()
        r.advance_to(42.0)
        r.event(N.EV_FLUSH, sst=1)
        (event,) = r.trace.events()
        assert event.ts_us == 42.0 and event.fields == {"sst": 1}

    def test_end_window_seals_metrics(self):
        r = ObsRecorder()
        r.inc(N.WINDOW_OPS, 7)
        r.advance_to(99.0)
        r.end_window(0)
        (snap,) = r.metrics.windows
        assert snap.index == 0 and snap.ts_us == 99.0
        assert snap.counters[N.WINDOW_OPS] == 7

    def test_export_without_audit_still_validates(self, tmp_path):
        r = ObsRecorder()
        r.inc(N.WINDOW_OPS, 3)
        r.end_window(0)
        r.event(N.EV_WINDOW, index=0)
        paths = r.export(str(tmp_path))
        assert validate_export(str(tmp_path)) == []
        assert sorted(paths) == ["events", "manifest", "metrics"]
        assert not (tmp_path / AUDIT_FILE).exists()
        manifest = json.loads((tmp_path / MANIFEST_FILE).read_text())
        assert manifest["windows"] == 1
        assert manifest["events_recorded"] == 1
        assert manifest["decisions"] == 0
        assert sorted(manifest["files"]) == [EVENTS_FILE, METRICS_FILE]

    def test_export_with_audit_header_includes_audit(self, tmp_path):
        r = ObsRecorder()
        r.audit.set_header({"seed": 1}, None, 4, 8)
        r.end_window(0)
        paths = r.export(str(tmp_path))
        assert "audit" in paths
        assert (tmp_path / AUDIT_FILE).exists()
        assert validate_export(str(tmp_path)) == []
