"""Whole-program DET/OWN rules: every rule catches a seeded violation
and stays quiet on the corrected form.

The centerpiece is the cross-module DET001 fixture: ambient entropy
reachable from a serve entry only through a 2-hop call chain spanning
three files — flagged by the whole-program pass, and provably
invisible to the old per-module pass (linting each file alone finds
nothing).
"""

from repro.lint.runner import LintEngine, lint_file


def _write(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


def _run(root, rules):
    return LintEngine([str(root)], rules).run().findings


# -- DET001: transitive ambient nondeterminism -------------------------------

_DET001_FILES = {
    "util.py": ("import os\n\n\ndef token():\n    return os.urandom(8)\n"),
    "shaping.py": (
        "from util import token as fresh_token\n\n\n"
        "def helper():\n    return fresh_token()\n"
    ),
    "serve_entry.py": (
        "from shaping import helper\n\n\n"
        "def serve_requests():\n    return helper()\n"
    ),
}


def test_det001_flags_two_hop_cross_module_chain(tmp_path):
    root = _write(tmp_path, _DET001_FILES)
    findings = _run(root, ["DET001"])
    assert [f.rule_id for f in findings] == ["DET001"]
    violation = findings[0]
    # Reported at the ambient call site, two modules from the root.
    assert violation.path.endswith("util.py")
    assert violation.line == 5
    assert "os.urandom" in violation.message
    assert "serve_entry.serve_requests" in violation.message
    assert "serve_requests() -> helper() -> token()" in violation.message


def test_det001_chain_is_invisible_to_per_module_pass(tmp_path):
    """The old single-file pass cannot see this defect: linting each
    module alone — all rules enabled — reports nothing at all."""
    root = _write(tmp_path, _DET001_FILES)
    for rel in _DET001_FILES:
        assert lint_file(str(root / rel)) == []


def test_det001_quiet_when_rng_is_injected(tmp_path):
    root = _write(
        tmp_path,
        {
            "util.py": ("def token(rng):\n    return rng.getrandbits(64)\n"),
            "shaping.py": (
                "from util import token as fresh_token\n\n\n"
                "def helper(rng):\n    return fresh_token(rng)\n"
            ),
            "serve_entry.py": (
                "from shaping import helper\n\n\n"
                "def serve_requests(rng):\n    return helper(rng)\n"
            ),
        },
    )
    assert _run(root, ["DET001"]) == []


def test_det001_ambient_without_serve_root_is_quiet(tmp_path):
    # Entropy in a module no serve/engine entry reaches is not DET001's
    # business (SIM001 governs the import site in repo code).
    root = _write(
        tmp_path,
        {"offline.py": "import os\n\n\ndef fill():\n    return os.urandom(4)\n"},
    )
    assert _run(root, ["DET001"]) == []


# -- DET002: unordered iteration into ordering-sensitive sinks ---------------


def test_det002_flags_set_loop_feeding_sink_via_call_graph(tmp_path):
    # `emit` is not sink-named; it is order-sensitive only because the
    # call graph shows it transitively calls `frame_record`.
    root = _write(
        tmp_path,
        {
            "sink.py": (
                "def frame_record(item):\n"
                "    return ('%s' % item).encode()\n"
                "\n\n"
                "def emit(item):\n"
                "    return frame_record(item)\n"
            ),
            "writer.py": (
                "from sink import emit\n\n\n"
                "def flush(batch):\n"
                "    pending = set(batch)\n"
                "    out = []\n"
                "    for item in pending:\n"
                "        out.append(emit(item))\n"
                "    return out\n"
            ),
        },
    )
    findings = _run(root, ["DET002"])
    assert [f.rule_id for f in findings] == ["DET002"]
    assert findings[0].path.endswith("writer.py")
    assert findings[0].line == 7
    assert "sorted" in findings[0].message


def test_det002_quiet_when_iteration_is_sorted(tmp_path):
    root = _write(
        tmp_path,
        {
            "sink.py": (
                "def frame_record(item):\n"
                "    return ('%s' % item).encode()\n"
            ),
            "writer.py": (
                "from sink import frame_record\n\n\n"
                "def flush(batch):\n"
                "    pending = set(batch)\n"
                "    out = []\n"
                "    for item in sorted(pending):\n"
                "        out.append(frame_record(item))\n"
                "    return out\n"
            ),
        },
    )
    assert _run(root, ["DET002"]) == []


def test_det002_flags_set_passed_directly_to_sink(tmp_path):
    root = _write(
        tmp_path,
        {
            "m.py": (
                "def merge_shards(parts):\n"
                "    pass\n"
                "\n\n"
                "def collect(results):\n"
                "    return merge_shards(set(results))\n"
            ),
        },
    )
    findings = _run(root, ["DET002"])
    assert [f.rule_id for f in findings] == ["DET002"]
    assert "pass sorted(...)" in findings[0].message


# -- DET003: unordered float accumulation (syntactic sibling) ----------------


def test_det003_flags_accumulation_over_set(tmp_path):
    root = _write(
        tmp_path,
        {
            "stats.py": (
                "def audit(samples):\n"
                "    vals = set(samples)\n"
                "    total_mass = 0.0\n"
                "    for v in vals:\n"
                "        total_mass += v\n"
                "    return total_mass\n"
            ),
        },
    )
    findings = _run(root, ["DET003"])
    assert [f.rule_id for f in findings] == ["DET003"]
    assert "total_mass" in findings[0].message


def test_det003_quiet_when_sorted(tmp_path):
    root = _write(
        tmp_path,
        {
            "stats.py": (
                "def audit(samples):\n"
                "    vals = set(samples)\n"
                "    total_mass = 0.0\n"
                "    for v in sorted(vals):\n"
                "        total_mass += v\n"
                "    return total_mass\n"
            ),
        },
    )
    assert _run(root, ["DET003"]) == []


def test_det003_flags_sum_over_set_display(tmp_path):
    root = _write(
        tmp_path,
        {"s.py": "def f(xs):\n    return sum({x * 0.5 for x in xs})\n"},
    )
    findings = _run(root, ["DET003"])
    assert [f.rule_id for f in findings] == ["DET003"]


# -- OWN001: shared mutable module state across components -------------------

_OWN001_FILES = {
    "state.py": "live_keys = {}\n",
    "comp_a.py": (
        "from state import live_keys\n\n\n"
        "class AShard(ServeComponent):\n"
        "    def note(self, key):\n"
        "        live_keys[key] = True\n"
    ),
    "comp_b.py": (
        "import state\n\n\n"
        "class BShard(ServeComponent):\n"
        "    def seen(self, key):\n"
        "        return key in state.live_keys\n"
    ),
}


def test_own001_flags_global_shared_by_two_components(tmp_path):
    root = _write(tmp_path, _OWN001_FILES)
    findings = _run(root, ["OWN001"])
    assert [f.rule_id for f in findings] == ["OWN001"]
    violation = findings[0]
    # Reported where the global is defined, naming both sharers.
    assert violation.path.endswith("state.py")
    assert violation.line == 1
    assert "comp_a.AShard" in violation.message
    assert "comp_b.BShard" in violation.message


def test_own001_quiet_with_single_owner(tmp_path):
    files = dict(_OWN001_FILES)
    files["comp_b.py"] = (
        "class BShard(ServeComponent):\n"
        "    def seen(self, key):\n"
        "        return False\n"
    )
    root = _write(tmp_path, files)
    assert _run(root, ["OWN001"]) == []


def test_own001_ignores_non_component_sharers(tmp_path):
    files = dict(_OWN001_FILES)
    files["comp_b.py"] = (
        "import state\n\n\n"
        "class PlainHelper:\n"
        "    def seen(self, key):\n"
        "        return key in state.live_keys\n"
    )
    root = _write(tmp_path, files)
    assert _run(root, ["OWN001"]) == []


# -- OWN002: global single-writer metric counters ----------------------------

_OWN002_FILES = {
    "names.py": "WINDOW_OPS = 'window_ops'\nEVICTIONS = 'evictions'\n",
    "ma.py": (
        "import names as N\n\n\n"
        "class AEngine:\n"
        "    def tick(self, rec):\n"
        "        rec.inc(N.WINDOW_OPS)\n"
    ),
    "mb.py": (
        "import names as N\n\n\n"
        "class BEngine:\n"
        "    def tick(self, rec):\n"
        "        rec.inc(N.WINDOW_OPS)\n"
    ),
}


def test_own002_flags_metric_with_two_writer_classes(tmp_path):
    root = _write(tmp_path, _OWN002_FILES)
    findings = _run(root, ["OWN002"])
    # Every inc site of the doubly-owned metric is flagged.
    assert [f.rule_id for f in findings] == ["OWN002", "OWN002"]
    assert {f.path.rsplit("/", 1)[-1] for f in findings} == {"ma.py", "mb.py"}
    assert "ma.AEngine" in findings[0].message
    assert "mb.BEngine" in findings[0].message


def test_own002_quiet_with_distinct_metrics(tmp_path):
    files = dict(_OWN002_FILES)
    files["mb.py"] = files["mb.py"].replace("N.WINDOW_OPS", "N.EVICTIONS")
    root = _write(tmp_path, files)
    assert _run(root, ["OWN002"]) == []


def test_own002_exempts_test_modules(tmp_path):
    files = dict(_OWN002_FILES)
    # The second writer lives in a test module: exercising the registry
    # in tests is not ownership.
    files["test_metrics.py"] = files.pop("mb.py")
    root = _write(tmp_path, files)
    assert _run(root, ["OWN002"]) == []


# -- OWN003: callback capture after handoff (syntactic sibling) --------------


def test_own003_flags_mutation_after_timer_handoff(tmp_path):
    root = _write(
        tmp_path,
        {
            "t.py": (
                "def arm(loop):\n"
                "    pending = []\n"
                "    loop.call_later(5.0, lambda: pending.append(1))\n"
                "    pending.append(2)\n"
            ),
        },
    )
    findings = _run(root, ["OWN003"])
    assert [f.rule_id for f in findings] == ["OWN003"]
    assert findings[0].line == 3
    assert "'pending'" in findings[0].message
    assert "snapshot" in findings[0].message


def test_own003_quiet_when_mutation_precedes_handoff(tmp_path):
    root = _write(
        tmp_path,
        {
            "t.py": (
                "def arm(loop):\n"
                "    pending = []\n"
                "    pending.append(2)\n"
                "    loop.call_later(5.0, lambda: pending.append(1))\n"
            ),
        },
    )
    assert _run(root, ["OWN003"]) == []


# -- OWN004: shared second-tier mutation stays with its owner ----------------

_OWN004_FILES = {
    "tier2.py": (
        "class Tier2Cache:\n"
        "    def tier2_probe(self, key):\n"
        "        return None\n"
        "    def tier2_offer(self, key, block):\n"
        "        return self.tier2_probe(key) is None\n"
    ),
    "shortcut.py": (
        "def sneaky_fill(cache, key, block):\n"
        "    return cache.tier2_offer(key, block)\n"
    ),
}


def test_own004_flags_tier2_mutation_outside_owner_modules(tmp_path):
    root = _write(tmp_path, _OWN004_FILES)
    findings = _run(root, ["OWN004"])
    assert [f.rule_id for f in findings] == ["OWN004"]
    assert findings[0].path.rsplit("/", 1)[-1] == "shortcut.py"
    assert "tier2_offer" in findings[0].message
    assert "Tier2Coordinator" in findings[0].message


def test_own004_quiet_inside_the_tier_modules(tmp_path):
    # The cache's own module (and the serve coordinator module, also
    # named tier2) may call the mutators freely.
    files = {"tier2.py": _OWN004_FILES["tier2.py"]}
    root = _write(tmp_path, files)
    assert _run(root, ["OWN004"]) == []


def test_own004_exempts_test_modules(tmp_path):
    files = dict(_OWN004_FILES)
    files["test_l2.py"] = files.pop("shortcut.py")
    root = _write(tmp_path, files)
    assert _run(root, ["OWN004"]) == []


# -- selection plumbing ------------------------------------------------------


def test_unknown_rule_selection_runs_nothing(tmp_path):
    root = _write(tmp_path, _DET001_FILES)
    assert _run(root, ["NOPE999"]) == []


def test_rules_compose_across_scopes(tmp_path):
    # One engine run executes syntactic and whole-program rules
    # together and orders findings deterministically by location.
    files = dict(_DET001_FILES)
    files["stats.py"] = (
        "def audit(samples):\n"
        "    vals = set(samples)\n"
        "    total_mass = 0.0\n"
        "    for v in vals:\n"
        "        total_mass += v\n"
        "    return total_mass\n"
    )
    root = _write(tmp_path, files)
    findings = _run(root, ["DET001", "DET003"])
    assert sorted(f.rule_id for f in findings) == ["DET001", "DET003"]
