"""Typing/style gate: runs ruff and mypy when the dev extra is present.

The CI ``lint`` job always runs both; locally these tests skip unless
``pip install -e ".[dev]"`` put the tools on the path, so the core test
suite needs nothing beyond numpy+pytest.
"""

import importlib.util
import os
import subprocess
import sys

import pytest

import repro

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
)
SRC_DIR = os.path.join(REPO_ROOT, "src")


def _have(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


@pytest.mark.skipif(not _have("ruff"), reason="ruff not installed (dev extra)")
def test_ruff_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", os.path.join(SRC_DIR, "repro")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(not _have("mypy"), reason="mypy not installed (dev extra)")
def test_mypy_clean():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
