"""The lint engine end to end: suppression forms, incremental AST
cache, baseline workflow, ``--changed``, report formats, SARIF
validity, and the rule catalogue listing."""

import json
import subprocess

import pytest

from repro.lint.runner import (
    LintEngine,
    Suppressions,
    changed_files,
    main,
)
from repro.lint.sarif import to_sarif, validate_sarif

VIOLATION = "import random\n"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


# -- suppression comment forms -----------------------------------------------


def test_disable_next_suppresses_following_line(tmp_path):
    path = _write(
        tmp_path, "f.py", "# lint: disable-next=SIM001\nimport random\n"
    )
    assert LintEngine([str(path)]).run().findings == []


def test_disable_next_does_not_leak_past_one_line(tmp_path):
    source = "# lint: disable-next=SIM001\nimport time\nimport random\n"
    path = _write(tmp_path, "f.py", source)
    findings = LintEngine([str(path)]).run().findings
    assert [(f.rule_id, f.line) for f in findings] == [("SIM001", 3)]


def test_disable_next_inside_multiline_construct(tmp_path):
    # The same-line form can't annotate a default argument buried in a
    # multi-line signature without touching that line; disable-next can.
    source = (
        "def f(\n"
        "    # lint: disable-next=MUT001\n"
        "    out=[],\n"
        "):\n"
        "    return out\n"
    )
    path = _write(tmp_path, "f.py", source)
    assert LintEngine([str(path)], ["MUT001"]).run().findings == []


def test_disable_file_suppresses_every_occurrence(tmp_path):
    source = (
        "# lint: disable-file=SIM001\n"
        "import random\n"
        "import time\n"
    )
    path = _write(tmp_path, "f.py", source)
    findings = LintEngine([str(path)]).run().findings
    # SIM001 is silenced file-wide; nothing else fires on these lines.
    assert [f.rule_id for f in findings] == []


def test_disable_file_is_rule_specific(tmp_path):
    source = "# lint: disable-file=MUT001\nimport random\n"
    path = _write(tmp_path, "f.py", source)
    findings = LintEngine([str(path)]).run().findings
    assert [f.rule_id for f in findings] == ["SIM001"]


def test_suppression_parser_forms():
    sup = Suppressions(
        "import x  # lint: disable=AAA001,BBB002\n"
        "# lint: disable-next=CCC003\n"
        "import y\n"
        "# lint: disable-file=DDD004\n"
    )
    assert sup.is_suppressed("AAA001", 1)
    assert sup.is_suppressed("BBB002", 1)
    assert not sup.is_suppressed("CCC003", 2)
    assert sup.is_suppressed("CCC003", 3)
    assert sup.is_suppressed("DDD004", 999)
    assert not sup.is_suppressed("AAA001", 2)


# -- incremental AST cache ---------------------------------------------------


def test_second_run_hits_ast_cache(tmp_path):
    _write(tmp_path, "a.py", "x = 1\n")
    _write(tmp_path, "b.py", "y = 2\n")
    cache_dir = str(tmp_path / ".cache")

    first = LintEngine([str(tmp_path)], cache_dir=cache_dir).run()
    assert (first.cache_hits, first.cache_misses) == (0, 2)

    second = LintEngine([str(tmp_path)], cache_dir=cache_dir).run()
    assert (second.cache_hits, second.cache_misses) == (2, 0)
    assert second.files == 2


def test_edited_file_is_a_precise_cache_miss(tmp_path):
    _write(tmp_path, "a.py", "x = 1\n")
    _write(tmp_path, "b.py", "y = 2\n")
    cache_dir = str(tmp_path / ".cache")
    LintEngine([str(tmp_path)], cache_dir=cache_dir).run()

    _write(tmp_path, "b.py", "y = 3\n")
    third = LintEngine([str(tmp_path)], cache_dir=cache_dir).run()
    assert (third.cache_hits, third.cache_misses) == (1, 1)


# -- baseline workflow -------------------------------------------------------


def test_baseline_update_then_clean_then_regression(tmp_path, capsys):
    legacy = _write(tmp_path, "legacy.py", VIOLATION)
    baseline = tmp_path / "bl.json"

    # A baseline that doesn't exist yet is a usage error, not a crash.
    assert main([str(legacy), "--baseline", str(baseline), "--no-cache"]) == 2

    assert (
        main(
            [
                str(legacy),
                "--baseline",
                str(baseline),
                "--update-baseline",
                "--no-cache",
            ]
        )
        == 0
    )
    recorded = json.loads(baseline.read_text())
    assert recorded["entries"], "baseline must record the finding"

    # Same tree vs the fresh baseline: clean exit, no '+' lines.
    capsys.readouterr()
    assert main([str(legacy), "--baseline", str(baseline), "--no-cache"]) == 0
    captured = capsys.readouterr()
    assert "+ " not in captured.out
    assert "clean vs" in captured.err

    # A new violation fails with a diff-style report.
    fresh = _write(tmp_path, "fresh.py", VIOLATION)
    code = main(
        [
            str(legacy),
            str(fresh),
            "--baseline",
            str(baseline),
            "--no-cache",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "+ " in captured.out
    assert "fresh.py" in captured.out
    assert "legacy.py" not in captured.out  # baselined, not re-reported
    assert "new violation(s)" in captured.err


def test_baseline_reports_stale_entries(tmp_path, capsys):
    legacy = _write(tmp_path, "legacy.py", VIOLATION)
    baseline = tmp_path / "bl.json"
    main(
        [
            str(legacy),
            "--baseline",
            str(baseline),
            "--update-baseline",
            "--no-cache",
        ]
    )

    legacy.write_text("x = 1\n")  # the legacy violation is fixed
    capsys.readouterr()
    code = main([str(legacy), "--baseline", str(baseline), "--no-cache"])
    captured = capsys.readouterr()
    assert code == 0  # stale entries inform, they don't fail the run
    assert "no longer fires" in captured.out


# -- --changed ---------------------------------------------------------------


def _git(repo, *args):
    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@t", *args],
        cwd=repo,
        check=True,
        capture_output=True,
    )


@pytest.fixture
def git_repo(tmp_path):
    _git(tmp_path, "init", "-q")
    _write(tmp_path, "committed.py", VIOLATION)
    _git(tmp_path, "add", "committed.py")
    _git(tmp_path, "commit", "-qm", "seed")
    return tmp_path


def test_changed_files_lists_modified_and_untracked(git_repo):
    _write(git_repo, "untracked.py", "x = 1\n")
    changed = changed_files("HEAD", str(git_repo))
    assert changed is not None
    assert {p.rsplit("/", 1)[-1] for p in changed} == {"untracked.py"}


def test_changed_reports_only_touched_files(git_repo, capsys, monkeypatch):
    monkeypatch.chdir(git_repo)
    _write(git_repo, "new.py", VIOLATION)
    code = main([str(git_repo), "--changed", "HEAD", "--no-cache"])
    captured = capsys.readouterr()
    assert code == 1
    assert "new.py" in captured.out
    # committed.py also violates, but it is unchanged vs HEAD.
    assert "committed.py" not in captured.out


def test_changed_does_not_misreport_baseline_as_stale(
    git_repo, capsys, monkeypatch
):
    # committed.py's finding is baselined.  Under --changed the file is
    # filtered from the view, which must not be mistaken for the
    # finding having been fixed.
    monkeypatch.chdir(git_repo)
    baseline = git_repo / "bl.json"
    main(
        [
            str(git_repo),
            "--baseline",
            str(baseline),
            "--update-baseline",
            "--no-cache",
        ]
    )
    capsys.readouterr()
    code = main(
        [
            str(git_repo),
            "--baseline",
            str(baseline),
            "--changed",
            "HEAD",
            "--no-cache",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "no longer fires" not in captured.out


def test_changed_with_clean_tree_exits_zero(git_repo, capsys, monkeypatch):
    monkeypatch.chdir(git_repo)
    code = main([str(git_repo), "--changed", "HEAD", "--no-cache"])
    assert code == 0


def test_changed_bad_ref_falls_back_to_everything(
    git_repo, capsys, monkeypatch
):
    monkeypatch.chdir(git_repo)
    code = main(
        [str(git_repo), "--changed", "no-such-ref", "--no-cache"]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "linting everything" in captured.err
    assert "committed.py" in captured.out


# -- report formats ----------------------------------------------------------


def test_json_format(tmp_path, capsys):
    path = _write(tmp_path, "f.py", VIOLATION)
    code = main([str(path), "--format", "json", "--no-cache"])
    captured = capsys.readouterr()
    assert code == 1
    payload = json.loads(captured.out)
    (finding,) = payload["findings"]
    assert finding["rule"] == "SIM001"
    assert finding["family"] == "SIM"
    assert finding["scope"] == "syntactic"
    assert finding["line"] == 1


def test_sarif_report_validates(tmp_path):
    _write(tmp_path, "f.py", VIOLATION)
    _write(
        tmp_path,
        "stats.py",
        "def audit(xs):\n"
        "    vals = set(xs)\n"
        "    total = 0.0\n"
        "    for v in vals:\n"
        "        total += v\n"
        "    return total\n",
    )
    findings = LintEngine([str(tmp_path)]).run().findings
    assert findings
    doc = to_sarif(findings, base=str(tmp_path))
    assert validate_sarif(doc) == []
    run = doc["runs"][0]
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)
    for result in run["results"]:
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1


def test_sarif_validator_rejects_broken_documents():
    doc = to_sarif([])
    assert validate_sarif(doc) == []
    assert validate_sarif({}) != []
    bad = json.loads(json.dumps(doc))
    bad["version"] = "1.0.0"
    assert any("version" in p for p in validate_sarif(bad))
    bad = json.loads(json.dumps(doc))
    bad["runs"] = []
    assert any("runs" in p for p in validate_sarif(bad))


def test_cli_writes_sarif_artifact_even_on_failure(tmp_path, capsys):
    path = _write(tmp_path, "f.py", VIOLATION)
    sarif_path = tmp_path / "lint.sarif"
    code = main([str(path), "--sarif", str(sarif_path), "--no-cache"])
    assert code == 1  # the gate fails...
    doc = json.loads(sarif_path.read_text())  # ...but the artifact exists
    assert validate_sarif(doc) == []
    assert doc["runs"][0]["results"][0]["ruleId"] == "SIM001"


def test_output_file_option(tmp_path, capsys):
    path = _write(tmp_path, "f.py", VIOLATION)
    out = tmp_path / "report.json"
    main(
        [
            str(path),
            "--format",
            "json",
            "--output",
            str(out),
            "--no-cache",
        ]
    )
    assert json.loads(out.read_text())["findings"]


# -- rule catalogue ----------------------------------------------------------


def test_list_rules_grouped_by_family_with_scopes(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    headers = [ln for ln in lines if ln.endswith(":")]
    # Families are sorted and stable.
    assert headers == sorted(headers)
    assert "DET:" in headers and "OWN:" in headers
    # Within a family, rules are listed in id order with their scope.
    det = [ln.strip() for ln in lines if ln.strip().startswith("DET")]
    assert det[0].startswith("DET:") or det[0].startswith("DET001")
    assert any("DET001  [whole-program]" in ln for ln in lines)
    assert any("DET003  [syntactic]" in ln for ln in lines)
    det_ids = [ln.split()[0] for ln in lines if ln.startswith("  DET")]
    assert det_ids == sorted(det_ids)


def test_select_expands_families(tmp_path, capsys):
    path = _write(tmp_path, "f.py", VIOLATION)
    # The DET family alone does not include SIM001.
    assert main([str(path), "--select", "DET", "--no-cache"]) == 0
    assert main([str(path), "--select", "SIM", "--no-cache"]) == 1


def test_select_rejects_unknown_tokens(tmp_path, capsys):
    path = _write(tmp_path, "f.py", VIOLATION)
    assert main([str(path), "--select", "BOGUS", "--no-cache"]) == 2
    assert "unknown rule" in capsys.readouterr().err
