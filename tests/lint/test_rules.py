"""repro-lint: every rule fires on a violating fixture, stays quiet on
suppressed/clean code, and the real source tree is violation-free."""

import os
import subprocess
import sys

import pytest

import repro
from repro.lint.rules import ALL_RULES
from repro.lint.runner import lint_file, lint_paths, main

REPRO_PKG = os.path.dirname(os.path.abspath(repro.__file__))


def _lint_source(tmp_path, source, select=None):
    path = tmp_path / "fixture.py"
    path.write_text(source)
    return lint_file(str(path), select)


def _rule_ids(findings):
    return [f.rule_id for f in findings]


# -- SIM001 ------------------------------------------------------------------


def test_sim001_flags_import_random(tmp_path):
    findings = _lint_source(tmp_path, "import random\n", ["SIM001"])
    assert _rule_ids(findings) == ["SIM001"]
    assert "seeded Random" in findings[0].message


def test_sim001_flags_time_and_datetime(tmp_path):
    source = "import time\nimport datetime\nfrom time import sleep\n"
    findings = _lint_source(tmp_path, source, ["SIM001"])
    assert _rule_ids(findings) == ["SIM001"] * 3
    assert [f.line for f in findings] == [1, 2, 3]


def test_sim001_allows_from_random_import_Random(tmp_path):
    source = "from random import Random\nrng = Random(7)\n"
    assert _lint_source(tmp_path, source, ["SIM001"]) == []


def test_sim001_flags_other_from_random_names(tmp_path):
    findings = _lint_source(tmp_path, "from random import randint\n", ["SIM001"])
    assert _rule_ids(findings) == ["SIM001"]


def test_sim001_ignores_relative_and_lookalike_imports(tmp_path):
    source = "from .random import helper\nimport numpy.random\n"
    # Relative imports never hit stdlib; numpy.random is seeded-generator
    # territory, not the ambient stdlib module.
    findings = _lint_source(tmp_path, source, ["SIM001"])
    assert findings == []


# -- SIM002 ------------------------------------------------------------------


def test_sim002_flags_unmetered_disk_read(tmp_path):
    source = (
        "class FlakyDisk:\n"
        "    def read_block(self, handle):\n"
        "        return self._tables[handle]\n"
    )
    findings = _lint_source(tmp_path, source, ["SIM002"])
    assert _rule_ids(findings) == ["SIM002"]
    assert "block_reads_total" in findings[0].message


def test_sim002_flags_partially_metered_read(tmp_path):
    source = (
        "class HalfDisk:\n"
        "    def read_block(self, handle):\n"
        "        self.block_reads_total += 1\n"
        "        return self._tables[handle]\n"
    )
    findings = _lint_source(tmp_path, source, ["SIM002"])
    assert _rule_ids(findings) == ["SIM002"]
    assert "self.bytes_read_total" in findings[0].message
    assert "self.block_reads_total" not in findings[0].message


def test_sim002_accepts_fully_metered_read(tmp_path):
    source = (
        "class GoodDisk:\n"
        "    def read_block(self, handle):\n"
        "        self.block_reads_total += 1\n"
        "        self.bytes_read_total += 4096\n"
        "        return self._tables[handle]\n"
    )
    assert _lint_source(tmp_path, source, ["SIM002"]) == []


def test_sim002_ignores_non_disk_classes_and_non_read_methods(tmp_path):
    source = (
        "class Cache:\n"
        "    def read_block(self, handle):\n"
        "        return None\n"
        "class RealDisk:\n"
        "    def install(self, table):\n"
        "        pass\n"
    )
    assert _lint_source(tmp_path, source, ["SIM002"]) == []


# -- CACHE001 ----------------------------------------------------------------


def test_cache001_flags_cache_without_invariants(tmp_path):
    source = (
        "class LeakyCache(CacheBase):\n"
        "    def put(self, key, value):\n"
        "        pass\n"
    )
    findings = _lint_source(tmp_path, source, ["CACHE001"])
    assert _rule_ids(findings) == ["CACHE001"]
    assert "LeakyCache" in findings[0].message


def test_cache001_accepts_cache_with_invariants(tmp_path):
    source = (
        "class SafeCache(CacheBase):\n"
        "    def check_invariants(self):\n"
        "        pass\n"
    )
    assert _lint_source(tmp_path, source, ["CACHE001"]) == []


def test_cache001_flags_serve_component_without_invariants(tmp_path):
    source = (
        "class LossyQueue(ServeComponent):\n"
        "    def push(self, item):\n"
        "        pass\n"
    )
    findings = _lint_source(tmp_path, source, ["CACHE001"])
    assert _rule_ids(findings) == ["CACHE001"]
    assert "LossyQueue" in findings[0].message
    assert "serving component" in findings[0].message


def test_cache001_accepts_serve_component_with_invariants(tmp_path):
    source = (
        "class SafeQueue(ServeComponent):\n"
        "    def check_invariants(self):\n"
        "        pass\n"
    )
    assert _lint_source(tmp_path, source, ["CACHE001"]) == []


# -- MUT001 / EXC001 / SLOT001 ----------------------------------------------


def test_mut001_flags_mutable_defaults(tmp_path):
    source = (
        "def f(out=[]):\n    pass\n"
        "def g(*, acc=dict()):\n    pass\n"
        "def h(x=None):\n    pass\n"
    )
    findings = _lint_source(tmp_path, source, ["MUT001"])
    assert _rule_ids(findings) == ["MUT001", "MUT001"]


def test_exc001_flags_bare_except(tmp_path):
    source = (
        "try:\n    pass\nexcept:\n    pass\n"
        "try:\n    pass\nexcept ValueError:\n    pass\n"
    )
    findings = _lint_source(tmp_path, source, ["EXC001"])
    assert _rule_ids(findings) == ["EXC001"]


def test_slot001_flags_node_class_without_slots(tmp_path):
    source = "class _TowerNode:\n    pass\n"
    findings = _lint_source(tmp_path, source, ["SLOT001"])
    assert _rule_ids(findings) == ["SLOT001"]


def test_slot001_accepts_slotted_node(tmp_path):
    source = "class _TowerNode:\n    __slots__ = ('key',)\n"
    assert _lint_source(tmp_path, source, ["SLOT001"]) == []


# -- EXC002 ------------------------------------------------------------------


_RETRY_UNBOUNDED = (
    "def fetch(self):\n"
    "    while True:\n"
    "        try:\n"
    "            return self._read()\n"
    "        except IOError:\n"
    "            self.retry_latency_us_total += 50.0\n"
)

_RETRY_UNCHARGED = (
    "def fetch(self):\n"
    "    attempts = 0\n"
    "    while True:\n"
    "        try:\n"
    "            return self._read()\n"
    "        except IOError:\n"
    "            if attempts >= 4:\n"
    "                raise\n"
    "            attempts += 1\n"
)

_RETRY_GOOD = (
    "def fetch(self):\n"
    "    attempts = 0\n"
    "    while True:\n"
    "        try:\n"
    "            return self._read()\n"
    "        except IOError:\n"
    "            if not self.policy.should_retry(attempts):\n"
    "                raise\n"
    "            self.retry_latency_us_total += self.policy.stall_us(attempts)\n"
    "            attempts += 1\n"
)


def test_exc002_flags_unbounded_retry_handler(tmp_path):
    findings = _lint_source(tmp_path, _RETRY_UNBOUNDED, ["EXC002"])
    assert _rule_ids(findings) == ["EXC002"]
    assert "bounded" in findings[0].message
    assert "RetryPolicy" in findings[0].message


def test_exc002_flags_uncharged_retry_loop(tmp_path):
    findings = _lint_source(tmp_path, _RETRY_UNCHARGED, ["EXC002"])
    assert _rule_ids(findings) == ["EXC002"]
    assert "charges simulated time" in findings[0].message


def test_exc002_accepts_bounded_charged_policy_form(tmp_path):
    assert _lint_source(tmp_path, _RETRY_GOOD, ["EXC002"]) == []


def test_exc002_accepts_charge_call_as_accounting(tmp_path):
    source = (
        "def fetch(self):\n"
        "    attempts = 0\n"
        "    while True:\n"
        "        try:\n"
        "            return self._read()\n"
        "        except IOError:\n"
        "            if attempts >= 4:\n"
        "                raise\n"
        "            self.clock.charge()\n"
        "            attempts += 1\n"
    )
    assert _lint_source(tmp_path, source, ["EXC002"]) == []


def test_exc002_ignores_escaping_handlers_and_bounded_loops(tmp_path):
    source = (
        # Handler always re-raises: an escape hatch, not a retry loop.
        "def a(self):\n"
        "    while True:\n"
        "        try:\n"
        "            return self._read()\n"
        "        except IOError:\n"
        "            raise\n"
        # Conditioned while: bounded on its own terms.
        "def b(self):\n"
        "    attempts = 0\n"
        "    while attempts < 4:\n"
        "        try:\n"
        "            return self._read()\n"
        "        except IOError:\n"
        "            attempts += 1\n"
        # No exception handling at all: an event loop, not a retry loop.
        "def c(self):\n"
        "    while True:\n"
        "        self.step()\n"
    )
    assert _lint_source(tmp_path, source, ["EXC002"]) == []


def test_exc002_flags_both_defects_at_once(tmp_path):
    source = (
        "def fetch(self):\n"
        "    while True:\n"
        "        try:\n"
        "            return self._read()\n"
        "        except IOError:\n"
        "            pass\n"
    )
    findings = _lint_source(tmp_path, source, ["EXC002"])
    assert _rule_ids(findings) == ["EXC002", "EXC002"]


# -- PERF001 -----------------------------------------------------------------


_PERF001_HOT = (
    "import numpy as np\n"
    "def estimate(key):  # hot-path\n"
    "    rows = np.zeros(4, dtype=np.int64)\n"
    "    return rows[0] + rows[1]\n"
)


def test_perf001_flags_scalar_numpy_index_in_hot_path(tmp_path):
    findings = _lint_source(tmp_path, _PERF001_HOT, ["PERF001"])
    assert _rule_ids(findings) == ["PERF001", "PERF001"]
    assert "hot-path function estimate()" in findings[0].message


def test_perf001_ignores_unmarked_functions(tmp_path):
    source = _PERF001_HOT.replace("  # hot-path", "")
    assert _lint_source(tmp_path, source, ["PERF001"]) == []


def test_perf001_ignores_slices_and_plain_lists(tmp_path):
    source = (
        "import numpy as np\n"
        "def estimate(key):  # hot-path\n"
        "    rows = np.zeros(4)\n"
        "    head = rows[:2]\n"  # slicing stays vectorised
        "    plain = [1, 2, 3]\n"
        "    return plain[0], head.sum()\n"
    )
    assert _lint_source(tmp_path, source, ["PERF001"]) == []


def test_perf001_marker_on_multiline_signature(tmp_path):
    source = (
        "import numpy as np\n"
        "def estimate(\n"
        "    key,\n"
        "):  # hot-path\n"
        "    rows = np.zeros(4)\n"
        "    return rows[key]\n"
    )
    findings = _lint_source(tmp_path, source, ["PERF001"])
    assert _rule_ids(findings) == ["PERF001"]


def test_perf001_ignores_row_and_column_views(tmp_path):
    source = (
        "import numpy as np\n"
        "def fold(n):  # hot-path\n"
        "    buf = np.zeros((4, n))\n"
        "    for pos in range(n):\n"
        "        col = buf[:, pos]\n"  # column view, stays vectorised
        "        buf[0, :2] = col[:2]\n"  # row view store
        "    return buf\n"
    )
    assert _lint_source(tmp_path, source, ["PERF001"]) == []


# -- PERF002 -----------------------------------------------------------------


_PERF002_HOT = (
    "def lookup(tables, keys):  # hot-path\n"
    "    out = []\n"
    "    for key in keys:\n"
    "        for table in tables:\n"
    "            if table.may_contain(key):\n"
    "                out.append(key)\n"
    "    return out\n"
)


def test_perf002_flags_scalar_probe_loop_in_hot_path(tmp_path):
    findings = _lint_source(tmp_path, _PERF002_HOT, ["PERF002"])
    assert _rule_ids(findings) == ["PERF002"]
    assert "may_contain_batch" in findings[0].message
    assert "hot-path function lookup()" in findings[0].message


def test_perf002_ignores_unmarked_functions(tmp_path):
    source = _PERF002_HOT.replace("  # hot-path", "")
    assert _lint_source(tmp_path, source, ["PERF002"]) == []


def test_perf002_exempts_batch_variants_own_fallbacks(tmp_path):
    source = (
        "def estimate_batch(sketch, keys):  # hot-path\n"
        "    return [sketch.estimate(k) for k in keys]\n"
        "def multi_get(tree, keys):  # hot-path\n"
        "    return [tree.fetch_block(k) for k in keys]\n"
    )
    assert _lint_source(tmp_path, source, ["PERF002"]) == []


def test_perf002_flags_each_probe_kind_once(tmp_path):
    source = (
        "def drain(sketch, tree, items):  # hot-path\n"
        "    total = 0\n"
        "    for item in items:\n"
        "        total += sketch.estimate(item)\n"
        "        tree.fetch_block(item)\n"
        "    return total\n"
    )
    findings = _lint_source(tmp_path, source, ["PERF002"])
    assert _rule_ids(findings) == ["PERF002", "PERF002"]
    messages = "\n".join(f.message for f in findings)
    assert ".estimate()" in messages and ".fetch_block()" in messages


def test_perf002_flags_probe_in_comprehension(tmp_path):
    source = (
        "def filter_present(bloom, keys):  # hot-path\n"
        "    return [k for k in keys if bloom.may_contain(k)]\n"
    )
    findings = _lint_source(tmp_path, source, ["PERF002"])
    assert _rule_ids(findings) == ["PERF002"]


def test_perf002_ignores_single_probe_outside_loops(tmp_path):
    source = (
        "def lookup(table, key):  # hot-path\n"
        "    if table.may_contain(key):\n"
        "        return table.fetch_block(key)\n"
        "    return None\n"
    )
    assert _lint_source(tmp_path, source, ["PERF002"]) == []


# -- OBS001 ------------------------------------------------------------------


def test_obs001_flags_inline_string_metric_names(tmp_path):
    source = (
        "def instrument(recorder):\n"
        "    recorder.metrics.inc('window.ops')\n"
        "    recorder.metrics.set_gauge('reward', 0.5)\n"
        "    recorder.metrics.observe('scan.admitted', 12)\n"
        "    recorder.event('flush', sst=3)\n"
    )
    findings = _lint_source(tmp_path, source, ["OBS001"])
    assert _rule_ids(findings) == ["OBS001"] * 4
    assert "'window.ops'" in findings[0].message
    assert "repro.obs.names" in findings[0].message


def test_obs001_accepts_registered_constants(tmp_path):
    source = (
        "from repro.obs import names as N\n"
        "def instrument(recorder, count):\n"
        "    recorder.metrics.inc(N.WINDOW_OPS, count)\n"
        "    recorder.event(N.EV_FLUSH, sst=3)\n"
    )
    assert _lint_source(tmp_path, source, ["OBS001"]) == []


def test_obs001_ignores_unrelated_methods_and_values(tmp_path):
    source = (
        "def mixed(hist, mapping, name):\n"
        "    hist.observe(12.5)\n"  # non-string first arg
        "    mapping.get('key')\n"  # method not in the recording set
        "    hist.observe(name)\n"  # variable, resolvable to a constant
    )
    assert _lint_source(tmp_path, source, ["OBS001"]) == []


# -- disable comments and runner behaviour -----------------------------------


def test_disable_comment_suppresses_one_line(tmp_path):
    source = "import random  # lint: disable=SIM001\nimport time\n"
    findings = _lint_source(tmp_path, source, ["SIM001"])
    assert [f.line for f in findings] == [2]


def test_disable_comment_is_rule_specific(tmp_path):
    source = "import random  # lint: disable=SIM002\n"
    findings = _lint_source(tmp_path, source, ["SIM001"])
    assert _rule_ids(findings) == ["SIM001"]


def test_disable_comment_takes_multiple_rules(tmp_path):
    source = "def f(out=[]):  # lint: disable=MUT001,SLOT001\n    pass\n"
    assert _lint_source(tmp_path, source, ["MUT001"]) == []


def test_syntax_error_reported_as_parse_finding(tmp_path):
    findings = _lint_source(tmp_path, "def broken(:\n")
    assert _rule_ids(findings) == ["PARSE"]


def test_main_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(bad)]) == 1
    assert "SIM001" in capsys.readouterr().out
    assert main([str(clean)]) == 0
    assert main(["--select", "NOPE", str(clean)]) == 2
    assert main([str(tmp_path / "missing_dir")]) == 2


def test_list_rules_documents_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "SIM001", "SIM002", "CACHE001", "MUT001", "EXC001", "EXC002",
        "OBS001", "SLOT001",
    ):
        assert rule_id in out
        assert ALL_RULES[rule_id].__doc__  # every rule is documented


def test_source_tree_is_lint_clean():
    findings = lint_paths([REPRO_PKG])
    assert findings == [], "\n".join(f.render() for f in findings)


@pytest.mark.parametrize("runner", ["module", "cli"])
def test_command_line_entrypoints(tmp_path, runner):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    env = dict(os.environ)
    src_dir = os.path.dirname(REPRO_PKG)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    argv = (
        [sys.executable, "-m", "repro.lint", str(bad)]
        if runner == "module"
        else [sys.executable, "-m", "repro", "lint", str(bad)]
    )
    proc = subprocess.run(argv, capture_output=True, text=True, env=env)
    assert proc.returncode == 1
    assert "SIM001" in proc.stdout
