"""Pass 1 of the lint engine: symbol table, call graph, AST cache.

Covers the resolution edge cases the whole-program rules depend on:
aliased imports (``import x as y``, ``from x import f as g``), method
resolution through inheritance, calls made inside lambdas/closures,
and names re-exported through a package ``__init__.py``.
"""

import ast

from repro.lint.symbols import (
    AstCache,
    ModuleInfo,
    build_symbol_table,
    content_hash,
    module_name_for,
)
from repro.lint.callgraph import build_call_graph, is_ambient_target


def _module(path, modname, source, is_package=False):
    return ModuleInfo(
        path=path,
        modname=modname,
        is_package=is_package,
        tree=ast.parse(source),
        source=source,
        digest=content_hash(source.encode()),
    )


def _project_dir(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path, return ModuleInfos."""
    modules = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    for rel in files:
        path = tmp_path / rel
        modname, is_package = module_name_for(str(path))
        modules.append(
            _module(str(path), modname, files[rel], is_package=is_package)
        )
    return modules


# -- module naming -----------------------------------------------------------


def test_module_name_walks_package_dirs(tmp_path):
    (tmp_path / "pkg" / "sub").mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "sub" / "mod.py").write_text("x = 1\n")
    modname, is_package = module_name_for(str(tmp_path / "pkg/sub/mod.py"))
    assert modname == "pkg.sub.mod"
    assert not is_package
    modname, is_package = module_name_for(str(tmp_path / "pkg/__init__.py"))
    assert modname == "pkg"
    assert is_package


def test_bare_file_is_its_own_module(tmp_path):
    (tmp_path / "solo.py").write_text("x = 1\n")
    modname, is_package = module_name_for(str(tmp_path / "solo.py"))
    assert modname == "solo"
    assert not is_package


# -- import aliases ----------------------------------------------------------


def test_resolve_module_alias():
    table = build_symbol_table(
        [_module("a.py", "a", "import util.rng as r\n")]
    )
    assert table.resolve("a", "r.draw") == "util.rng.draw"


def test_resolve_from_import_alias():
    table = build_symbol_table(
        [_module("a.py", "a", "from util import draw as pick\n")]
    )
    assert table.resolve("a", "pick") == "util.draw"


def test_resolve_follows_alias_chain_across_modules():
    modules = [
        _module("a.py", "a", "from b import g\n\ndef f():\n    g()\n"),
        _module("b.py", "b", "from c import helper as g\n"),
        _module("c.py", "c", "def helper():\n    pass\n"),
    ]
    table = build_symbol_table(modules)
    assert table.resolve("a", "g") == "c.helper"


def test_relative_import_resolution(tmp_path):
    modules = _project_dir(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/core.py": "def spin():\n    pass\n",
            "pkg/user.py": "from .core import spin as whirl\n",
        },
    )
    table = build_symbol_table(modules)
    assert table.resolve("pkg.user", "whirl") == "pkg.core.spin"


def test_reexport_through_package_init(tmp_path):
    modules = _project_dir(
        tmp_path,
        {
            "pkg/__init__.py": "from pkg.impl import work\n",
            "pkg/impl.py": "def work():\n    pass\n",
            "client.py": (
                "from pkg import work\n\ndef go():\n    work()\n"
            ),
        },
    )
    table = build_symbol_table(modules)
    assert table.resolve("client", "work") == "pkg.impl.work"
    graph = build_call_graph(table)
    assert "pkg.impl.work" in graph.callees("client.go")


# -- inheritance method resolution -------------------------------------------


def test_method_resolves_through_inheritance():
    source = (
        "class Base:\n"
        "    def ping(self):\n"
        "        pass\n"
        "\n"
        "class Child(Base):\n"
        "    def go(self):\n"
        "        self.ping()\n"
    )
    table = build_symbol_table([_module("m.py", "m", source)])
    graph = build_call_graph(table)
    assert "m.Base.ping" in graph.callees("m.Child.go")


def test_override_wins_over_base_method():
    source = (
        "class Base:\n"
        "    def ping(self):\n"
        "        pass\n"
        "\n"
        "class Child(Base):\n"
        "    def ping(self):\n"
        "        pass\n"
        "\n"
        "    def go(self):\n"
        "        self.ping()\n"
    )
    table = build_symbol_table([_module("m.py", "m", source)])
    graph = build_call_graph(table)
    callees = graph.callees("m.Child.go")
    assert "m.Child.ping" in callees
    assert "m.Base.ping" not in callees


def test_subclasses_of_is_transitive():
    source = (
        "class ServeComponent:\n"
        "    pass\n"
        "\n"
        "class Shard(ServeComponent):\n"
        "    pass\n"
        "\n"
        "class HotShard(Shard):\n"
        "    pass\n"
    )
    table = build_symbol_table([_module("m.py", "m", source)])
    subs = table.subclasses_of(("ServeComponent",))
    assert {"m.Shard", "m.HotShard"} <= subs


# -- lambdas and closures ----------------------------------------------------


def test_call_inside_lambda_charged_to_owner():
    source = (
        "import os\n"
        "\n"
        "def outer(loop):\n"
        "    loop.submit(lambda: os.urandom(4))\n"
    )
    table = build_symbol_table([_module("m.py", "m", source)])
    graph = build_call_graph(table)
    assert "m.outer" in graph.ambient
    assert graph.ambient["m.outer"][0].target == "os.urandom"


def test_call_inside_closure_charged_to_owner():
    source = (
        "def helper():\n"
        "    pass\n"
        "\n"
        "def outer():\n"
        "    def inner():\n"
        "        helper()\n"
        "    return inner\n"
    )
    table = build_symbol_table([_module("m.py", "m", source)])
    graph = build_call_graph(table)
    assert "m.helper" in graph.callees("m.outer")


# -- ambient classification --------------------------------------------------


def test_ambient_targets():
    assert is_ambient_target("random.random")
    assert is_ambient_target("time.monotonic")
    assert is_ambient_target("os.urandom")
    assert is_ambient_target("uuid.uuid4")
    assert is_ambient_target("datetime.datetime.now")
    # Seeded generators are the sanctioned alternative, not ambient.
    assert not is_ambient_target("random.Random")
    assert not is_ambient_target("math.sqrt")


def test_reaching_and_shortest_path():
    modules = [
        _module(
            "a.py",
            "a",
            "from b import mid\n\ndef top():\n    mid()\n",
        ),
        _module(
            "b.py",
            "b",
            "import os\n\ndef mid():\n    leaf()\n\ndef leaf():\n"
            "    os.urandom(1)\n",
        ),
    ]
    table = build_symbol_table(modules)
    graph = build_call_graph(table)
    tainted = graph.reaching(set(graph.ambient))
    assert {"a.top", "b.mid", "b.leaf"} <= tainted
    assert graph.shortest_path("a.top", "b.leaf") == [
        "a.top",
        "b.mid",
        "b.leaf",
    ]


# -- AST cache ---------------------------------------------------------------


def test_ast_cache_round_trip(tmp_path):
    cache = AstCache(str(tmp_path / "cache"))
    digest = content_hash(b"x = 1\n")
    assert cache.get(digest) is None
    cache.put(digest, ast.parse("x = 1\n"))
    cache.save()

    fresh = AstCache(str(tmp_path / "cache"))
    tree = fresh.get(digest)
    assert tree is not None
    assert isinstance(tree.body[0], ast.Assign)
    assert fresh.hits == 1
    assert fresh.misses == 0


def test_ast_cache_tolerates_corruption(tmp_path):
    cache_dir = tmp_path / "cache"
    cache = AstCache(str(cache_dir))
    cache.put(content_hash(b"x = 1\n"), ast.parse("x = 1\n"))
    cache.save()
    (pickle_file,) = list(cache_dir.iterdir())
    pickle_file.write_bytes(b"not a pickle")
    fresh = AstCache(str(cache_dir))
    assert fresh.get(content_hash(b"x = 1\n")) is None


def test_ast_cache_disabled_without_dir():
    cache = AstCache(None)
    digest = content_hash(b"x = 1\n")
    assert cache.get(digest) is None
    cache.put(digest, ast.parse("x = 1\n"))
    cache.save()  # must be a no-op: nothing is written anywhere
    assert AstCache(None).get(digest) is None
