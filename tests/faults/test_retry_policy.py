"""RetryPolicy: bounds, schedule, seeded jitter, tree integration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, TransientIOError
from repro.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.keys import key_of, value_of


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_us=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_frac=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_frac=-0.1)


class TestSchedule:
    def test_bounded(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(0)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)
        assert not RetryPolicy(max_attempts=0).should_retry(0)

    def test_default_matches_historical_doubling(self):
        policy = RetryPolicy(max_attempts=4, backoff_us=50.0)
        assert [policy.stall_us(a) for a in range(4)] == [
            50.0,
            100.0,
            200.0,
            400.0,
        ]

    def test_jitter_is_seeded_and_bounded(self):
        a = RetryPolicy(backoff_us=100.0, jitter_frac=0.5, seed=9)
        b = RetryPolicy(backoff_us=100.0, jitter_frac=0.5, seed=9)
        stalls_a = [a.stall_us(i) for i in range(6)]
        stalls_b = [b.stall_us(i) for i in range(6)]
        assert stalls_a == stalls_b  # same seed, same bytes
        for i, stall in enumerate(stalls_a):
            base = 100.0 * 2.0**i
            assert 0.5 * base <= stall <= 1.5 * base
        c = RetryPolicy(backoff_us=100.0, jitter_frac=0.5, seed=10)
        assert [c.stall_us(i) for i in range(6)] != stalls_a


def _faulted_tree(**options) -> LSMTree:
    tree = LSMTree(LSMOptions(memtable_entries=16, **options))
    for i in range(200):
        tree.put(key_of(i), value_of(i))
    tree.attach_fault_injector(
        FaultInjector(FaultConfig(transient_read_rate=0.1, seed=3))
    )
    return tree


class TestTreeIntegration:
    def test_stalls_follow_policy_schedule(self):
        tree = _faulted_tree()
        for i in range(200):
            tree.get(key_of(i))
        assert tree.read_retries_total > 0
        schedule = {50.0 * 2.0**a for a in range(4)}
        assert set(tree.retry_stalls_us) <= schedule
        assert tree.retry_latency_us_total == pytest.approx(
            sum(tree.retry_stalls_us)
        )

    def test_jitter_option_flows_through_and_reproduces(self):
        def stalls(seed: int):
            tree = _faulted_tree(retry_jitter_frac=0.25, seed=seed)
            for i in range(200):
                tree.get(key_of(i))
            return list(tree.retry_stalls_us)

        first, second = stalls(0x5EED), stalls(0x5EED)
        assert first and first == second
        assert any(s not in (50.0, 100.0, 200.0, 400.0) for s in first)

    def test_exhausted_budget_escalates(self):
        tree = LSMTree(LSMOptions(memtable_entries=16, max_read_retries=0))
        for i in range(64):
            tree.put(key_of(i), value_of(i))
        tree.attach_fault_injector(
            FaultInjector(FaultConfig(transient_read_rate=1.0, seed=1))
        )
        with pytest.raises(TransientIOError):
            for i in range(64):
                tree.get(key_of(i))
