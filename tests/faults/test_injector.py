"""FaultInjector: configuration, determinism, and bookkeeping."""

from __future__ import annotations

import pytest

from repro.core.stats import WindowStats
from repro.errors import ConfigError, TransientIOError
from repro.faults.injector import FaultConfig, FaultInjector
from repro.lsm.block import BlockHandle
from repro.lsm.sstable import SSTable


def _table(sst_id: int = 1, n: int = 8) -> SSTable:
    entries = [(f"k{i:04d}", f"v{i}") for i in range(n)]
    return SSTable.from_entries(sst_id, entries, entries_per_block=4)


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultConfig(transient_read_rate=1.5)
        with pytest.raises(ConfigError):
            FaultConfig(corruption_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultConfig(torn_wal_rate=2.0)
        with pytest.raises(ConfigError):
            FaultConfig(blackout_len=-1)

    def test_zero_rates_inject_nothing(self):
        injector = FaultInjector(FaultConfig())
        table = _table()
        for i in range(100):
            injector.before_block_read(BlockHandle(1, i % 2), table)
            assert not injector.on_wal_append()
        assert injector.stats.total_injected == 0
        assert injector.stats.reads_seen == 100
        assert injector.stats.wal_appends_seen == 100


class TestDeterminism:
    def _schedule(self, seed: int, n: int = 400):
        injector = FaultInjector(
            FaultConfig(transient_read_rate=0.1, corruption_rate=0.05, seed=seed)
        )
        table = _table()
        outcomes = []
        for i in range(n):
            handle = BlockHandle(1, i % table.num_blocks)
            try:
                injector.before_block_read(handle, table)
                outcomes.append("ok")
            except TransientIOError:
                outcomes.append("transient")
            # Repair so corruption decisions aren't masked by the
            # already-corrupt check diverging across runs.
            table.repair_block(handle.block_no)
        return outcomes, injector.stats

    def test_same_seed_same_schedule(self):
        a, stats_a = self._schedule(seed=42)
        b, stats_b = self._schedule(seed=42)
        assert a == b
        assert stats_a == stats_b

    def test_different_seed_different_schedule(self):
        a, _ = self._schedule(seed=1)
        b, _ = self._schedule(seed=2)
        assert a != b


class TestInjection:
    def test_transient_rate_roughly_honored(self):
        injector = FaultInjector(FaultConfig(transient_read_rate=0.2, seed=3))
        table = _table()
        n = 2000
        for i in range(n):
            try:
                injector.before_block_read(BlockHandle(1, 0), table)
            except TransientIOError:
                pass
        rate = injector.stats.transient_injected / n
        assert 0.12 < rate < 0.28

    def test_corruption_marks_block_once(self):
        injector = FaultInjector(FaultConfig(corruption_rate=1.0, seed=0))
        table = _table()
        injector.before_block_read(BlockHandle(1, 0), table)
        injector.before_block_read(BlockHandle(1, 0), table)
        assert table.is_block_corrupt(0)
        # Second read of an already-corrupt block injects nothing new.
        assert injector.stats.corruptions_injected == 1

    def test_torn_appends_counted(self):
        injector = FaultInjector(FaultConfig(torn_wal_rate=1.0, seed=0))
        assert injector.on_wal_append()
        assert injector.stats.torn_injected == 1


class TestBlackout:
    def test_windows_in_span_poisoned(self):
        injector = FaultInjector(FaultConfig(blackout_start=5, blackout_len=2))
        healthy = WindowStats(window_index=4, ops=10, points=10)
        assert injector.maybe_blackout(healthy).is_healthy()
        for idx in (5, 6):
            poisoned = injector.maybe_blackout(
                WindowStats(window_index=idx, ops=10, points=10)
            )
            assert not poisoned.is_healthy()
        after = injector.maybe_blackout(WindowStats(window_index=7, ops=10, points=10))
        assert after.is_healthy()
        assert injector.stats.blackouts_injected == 2
