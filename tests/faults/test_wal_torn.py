"""Torn WAL tails: framing, replay semantics, and recovery accounting."""

from __future__ import annotations

from repro.faults.injector import FaultConfig, FaultInjector
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.lsm.wal import WriteAheadLog


class TornEverything(FaultInjector):
    """Injector whose every WAL append lands torn."""

    def __init__(self):
        super().__init__(FaultConfig(torn_wal_rate=1.0))


class TestTornReplay:
    def test_intact_log_replays_fully(self):
        wal = WriteAheadLog()
        wal.append("a", "1")
        wal.append("b", None)
        assert wal.replay() == [("a", "1"), ("b", None)]
        assert wal.last_replay_dropped == 0

    def test_replay_stops_at_first_torn_record(self):
        wal = WriteAheadLog()
        injector = FaultInjector(FaultConfig())
        wal.append("a", "1")
        wal.set_fault_injector(TornEverything())
        wal.append("b", "2")  # torn
        wal.set_fault_injector(injector)  # healthy again
        wal.append("c", "3")  # intact but after the tear
        assert wal.torn_appends_total == 1
        # Torn-tail semantics: the first bad checksum ends the durable log,
        # even though a later record happens to be intact.
        assert wal.replay() == [("a", "1")]
        assert wal.last_replay_dropped == 2
        assert wal.replay_dropped_total == 2

    def test_records_still_exposes_everything(self):
        """records() keeps its historical contract (all pending records);
        only replay() applies checksum verification."""
        wal = WriteAheadLog()
        wal.set_fault_injector(TornEverything())
        wal.append("a", "1")
        assert wal.records() == [("a", "1")]
        assert wal.replay() == []


class TestCrashWithTornTail:
    def test_crash_loses_only_the_torn_tail(self):
        tree = LSMTree(LSMOptions(memtable_entries=64, entries_per_sstable=64))
        tree.put("k1", "v1")
        tree.put("k2", "v2")
        tree.attach_fault_injector(TornEverything())
        tree.put("k3", "v3")  # torn append
        tree.attach_fault_injector(None)

        replayed = tree.simulate_crash_and_recover()
        assert replayed == 2
        assert tree.get("k1") == "v1"
        assert tree.get("k2") == "v2"
        assert tree.get("k3") is None  # acknowledged but lost to the tear
        assert tree.wal_records_lost_total == 1
        assert tree.crash_recoveries_total == 1

    def test_flush_truncates_torn_records_too(self):
        tree = LSMTree(LSMOptions(memtable_entries=64, entries_per_sstable=64))
        tree.attach_fault_injector(TornEverything())
        tree.put("k1", "v1")
        tree.attach_fault_injector(None)
        tree.flush()
        # The flush made k1 durable in an SSTable; the torn WAL record is
        # gone and can no longer shadow anything.
        assert len(tree.wal) == 0
        assert tree.simulate_crash_and_recover() == 0
        assert tree.get("k1") == "v1"
