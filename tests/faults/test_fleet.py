"""Fleet fault plans: seeded shard-crash schedules for the serving layer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults.fleet import FleetFaultConfig, FleetFaultPlan, ShardCrash


class TestConfigValidation:
    def test_defaults_are_valid(self):
        FleetFaultConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crashes": -1},
            {"earliest_us": -1.0},
            {"latest_us": 5.0, "earliest_us": 10.0},
            {"failover_detect_us": -1.0},
            {"replay_per_record_us": -1.0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FleetFaultConfig(**kwargs)


class TestPlan:
    def test_plan_is_deterministic(self):
        config = FleetFaultConfig(crashes=3, seed=9)
        a = list(FleetFaultPlan(config, num_shards=8))
        b = list(FleetFaultPlan(config, num_shards=8))
        assert a == b

    def test_seeds_diverge(self):
        a = list(FleetFaultPlan(FleetFaultConfig(crashes=3, seed=1), 8))
        b = list(FleetFaultPlan(FleetFaultConfig(crashes=3, seed=2), 8))
        assert a != b

    def test_victims_are_distinct_shards(self):
        plan = FleetFaultPlan(FleetFaultConfig(crashes=4, seed=5), 6)
        victims = [crash.shard_id for crash in plan]
        assert len(set(victims)) == len(victims)
        assert all(0 <= v < 6 for v in victims)

    def test_times_within_window_and_sorted_per_victim_order(self):
        config = FleetFaultConfig(
            crashes=3, earliest_us=1_000.0, latest_us=9_000.0, seed=2
        )
        plan = FleetFaultPlan(config, 8)
        times = [crash.at_us for crash in plan]
        assert all(1_000.0 <= t <= 9_000.0 for t in times)
        assert times == sorted(times)

    def test_must_leave_a_survivor(self):
        with pytest.raises(ConfigError):
            FleetFaultPlan(FleetFaultConfig(crashes=4), num_shards=4)
        with pytest.raises(ConfigError):
            FleetFaultPlan(FleetFaultConfig(crashes=5), num_shards=4)

    def test_len_matches_crashes(self):
        plan = FleetFaultPlan(FleetFaultConfig(crashes=2, seed=0), 5)
        assert len(plan) == 2

    def test_crash_entries_are_frozen(self):
        crash = ShardCrash(shard_id=1, at_us=5.0)
        with pytest.raises(AttributeError):
            crash.at_us = 6.0  # type: ignore[misc]
