"""Controller degraded mode: blackout detection, pinning, recovery."""

from __future__ import annotations

import math

import pytest

from repro.cache.admission import FrequencyAdmission, PartialScanAdmission
from repro.cache.block_cache import BlockCache
from repro.cache.range_cache import RangeCache
from repro.cache.sketch import CountMinSketch
from repro.core.config import AdCacheConfig
from repro.core.controller import PolicyDecisionController
from repro.core.stats import WindowStats
from repro.lsm.storage import SimulatedDisk
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import STATE_DIM
from repro.rl.reward import adapt_learning_rate


def make_controller(**config_kw):
    config = AdCacheConfig(total_cache_bytes=1 << 20, hidden_dim=32, **config_kw)
    agent = ActorCriticAgent(STATE_DIM, 4, hidden_dim=32, seed=1)
    disk = SimulatedDisk()
    block = BlockCache(config.total_cache_bytes // 2, 4096, disk.read_block)
    range_ = RangeCache(config.total_cache_bytes // 2, entry_charge=1024)
    freq = FrequencyAdmission(CountMinSketch(width=256, depth=2, seed=1))
    scan = PartialScanAdmission(a=16, b=0.5)
    controller = PolicyDecisionController(
        config, agent, block, range_, freq, scan,
        entries_per_block=4, level0_max_runs=8,
    )
    return controller, block, range_, freq, scan


def healthy(index=0, io_miss=1000):
    return WindowStats(
        window_index=index, ops=1000, points=500, scans=300, writes=200,
        scan_length_sum=300 * 16, io_miss=io_miss, num_levels=4, level0_runs=2,
    )


def poisoned(index=0):
    w = healthy(index)
    w.io_miss = float("nan")
    w.range_occupancy = float("inf")
    return w


class TestActivation:
    def test_poisoned_window_enters_degraded_mode(self):
        controller, *_ = make_controller()
        record = controller.on_window(poisoned(0))
        assert record.degraded
        assert controller.degraded
        assert controller.degraded_activations_total == 1
        assert controller.degraded_windows_total == 1
        assert controller.agent.updates_total == 0  # RL never saw the window

    def test_consecutive_blackout_counts_one_activation(self):
        controller, *_ = make_controller()
        for i in range(4):
            controller.on_window(poisoned(i))
        assert controller.degraded_activations_total == 1
        assert controller.degraded_windows_total == 4

    def test_pinned_to_safe_defaults(self):
        controller, block, range_, freq, scan = make_controller()
        # Let RL move the parameters somewhere first.
        for i in range(6):
            controller.on_window(healthy(i, io_miss=1000 + 50 * i))
        for i in range(6, 16):
            controller.on_window(poisoned(i))
        config = controller.config
        assert controller.range_ratio == pytest.approx(config.initial_range_ratio)
        assert controller.point_threshold == 0.0  # admission wide open
        assert freq.threshold == 0.0
        assert controller.scan_params == pytest.approx(
            (config.initial_a, config.initial_b)
        )
        total = config.total_cache_bytes
        assert block.budget_bytes + range_.budget_bytes == total

    def test_boundary_walk_is_rate_limited(self):
        controller, *_ = make_controller()
        for i in range(6):
            controller.on_window(healthy(i, io_miss=1000 + 50 * i))
        before = controller.range_ratio
        controller.on_window(poisoned(6))
        after = controller.range_ratio
        assert abs(after - before) <= controller.config.max_ratio_step + 1e-9

    def test_guard_can_be_disabled(self):
        controller, *_ = make_controller(enable_degraded_guard=False)
        record = controller.on_window(poisoned(0))
        assert not record.degraded
        assert controller.degraded_activations_total == 0


class TestRecovery:
    def test_recovers_after_configured_healthy_streak(self):
        controller, *_ = make_controller(degraded_recovery_windows=2)
        controller.on_window(poisoned(0))
        assert controller.degraded
        r1 = controller.on_window(healthy(1))
        assert r1.degraded  # streak 1 < 2: still pinned
        r2 = controller.on_window(healthy(2))
        assert not r2.degraded
        assert not controller.degraded
        assert controller.degraded_recoveries_total == 1

    def test_relapse_resets_the_streak(self):
        controller, *_ = make_controller(degraded_recovery_windows=2)
        controller.on_window(poisoned(0))
        controller.on_window(healthy(1))
        controller.on_window(poisoned(2))  # relapse
        record = controller.on_window(healthy(3))
        assert record.degraded  # streak restarted, not yet recovered
        assert controller.degraded_activations_total == 1  # one episode

    def test_learning_resumes_after_recovery(self):
        controller, *_ = make_controller(degraded_recovery_windows=1)
        controller.on_window(healthy(0))
        controller.on_window(poisoned(1))
        updates_during = controller.agent.updates_total
        controller.on_window(healthy(2))  # recovery window (acts, no update)
        controller.on_window(healthy(3))  # first post-recovery transition
        assert controller.agent.updates_total > updates_during

    def test_no_training_across_the_blackout(self):
        """The (state, action) pending from before the blackout must be
        discarded, not paired with a post-blackout reward."""
        controller, *_ = make_controller(degraded_recovery_windows=1)
        controller.on_window(healthy(0))
        controller.on_window(poisoned(1))
        controller.on_window(healthy(2))
        # Window 2 recovered and acted, but had no prev transition to train on.
        assert controller.agent.updates_total == 0

    def test_lr_stays_finite_through_blackout(self):
        controller, *_ = make_controller(degraded_recovery_windows=1)
        for i in range(3):
            controller.on_window(healthy(i))
        for i in range(3, 6):
            controller.on_window(poisoned(i))
        for i in range(6, 10):
            controller.on_window(healthy(i))
        assert math.isfinite(controller.agent.actor_lr)
        assert all(math.isfinite(r.actor_lr) for r in controller.history)


class TestAdaptLearningRateGuard:
    def test_nan_reward_leaves_lr_unchanged(self):
        assert adapt_learning_rate(1e-3, float("nan")) == pytest.approx(1e-3)

    def test_inf_reward_leaves_lr_unchanged(self):
        assert adapt_learning_rate(1e-3, float("inf")) == pytest.approx(1e-3)
        assert adapt_learning_rate(1e-3, float("-inf")) == pytest.approx(1e-3)

    def test_non_finite_input_lr_still_clamped(self):
        out = adapt_learning_rate(5.0, float("nan"), lr_min=1e-5, lr_max=1e-2)
        assert out == pytest.approx(1e-2)

    def test_finite_rewards_unaffected_by_guard(self):
        assert adapt_learning_rate(1e-3, 0.5) == pytest.approx(5e-4)
        assert adapt_learning_rate(1e-3, -0.5) == pytest.approx(1.5e-3)
