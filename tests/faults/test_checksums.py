"""Block checksums: corruption detection, repair, and disk accounting."""

from __future__ import annotations

import pytest

from repro.errors import CorruptionError, StorageError
from repro.lsm.block import BlockHandle, DataBlock
from repro.lsm.sstable import SSTable
from repro.lsm.storage import SimulatedDisk


def _table(sst_id: int = 1, n: int = 8) -> SSTable:
    entries = [(f"k{i:04d}", f"v{i}") for i in range(n)]
    return SSTable.from_entries(sst_id, entries, entries_per_block=4)


class TestBlockChecksum:
    def test_stable_across_calls(self):
        block = DataBlock(BlockHandle(1, 0), [("a", "1"), ("b", "2")])
        assert block.checksum == block.checksum

    def test_depends_on_payload(self):
        a = DataBlock(BlockHandle(1, 0), [("a", "1"), ("b", "2")])
        b = DataBlock(BlockHandle(1, 0), [("a", "1"), ("b", "3")])
        assert a.checksum != b.checksum

    def test_tombstone_distinct_from_empty_value(self):
        dead = DataBlock(BlockHandle(1, 0), [("a", None)])
        empty = DataBlock(BlockHandle(1, 0), [("a", "")])
        # None and "" must not collide in the serialized payload.
        assert dead.checksum != empty.checksum


class TestSSTableChecksums:
    def test_fresh_table_verifies(self):
        table = _table()
        for block_no in range(table.num_blocks):
            assert table.verify_block(block_no)
            assert not table.is_block_corrupt(block_no)

    def test_corrupt_then_repair(self):
        table = _table()
        table.corrupt_block(0)
        assert table.is_block_corrupt(0)
        assert table.verify_block(1)  # other blocks untouched
        table.repair_block(0)
        assert table.verify_block(0)

    def test_corrupt_leaves_payload_clean(self):
        """Corruption tampers the stored checksum, not the data — cached
        clean copies of the block must remain trustworthy."""
        table = _table()
        before = table.block_at(0).entries()
        table.corrupt_block(0)
        assert table.block_at(0).entries() == before

    def test_corrupt_out_of_range_raises(self):
        table = _table()
        with pytest.raises(StorageError):
            table.corrupt_block(99)


class TestDiskVerification:
    def test_read_of_corrupt_block_raises(self):
        disk = SimulatedDisk()
        table = _table()
        disk.install(table)
        table.corrupt_block(0)
        with pytest.raises(CorruptionError):
            disk.read_block(BlockHandle(1, 0))
        assert disk.corruptions_detected_total == 1
        assert disk.failed_reads_total == 1
        # Failed attempts never count as successful reads.
        assert disk.block_reads_total == 0

    def test_repair_restores_reads(self):
        disk = SimulatedDisk()
        table = _table()
        disk.install(table)
        table.corrupt_block(0)
        disk.repair_block(BlockHandle(1, 0))
        block = disk.read_block(BlockHandle(1, 0))
        assert block.get("k0000") == (True, "v0")
        assert disk.corruption_repairs_total == 1
        assert disk.block_reads_total == 1

    def test_verification_can_be_disabled(self):
        disk = SimulatedDisk(verify_checksums=False)
        table = _table()
        disk.install(table)
        table.corrupt_block(0)
        # Unverified disks serve the (clean) payload without checking.
        assert disk.read_block(BlockHandle(1, 0)).get("k0000") == (True, "v0")

    def test_repair_of_unknown_sst_raises(self):
        disk = SimulatedDisk()
        with pytest.raises(StorageError):
            disk.repair_block(BlockHandle(42, 0))
