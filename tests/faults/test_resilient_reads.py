"""The resilient read path: retries, backoff, repair, and escalation."""

from __future__ import annotations

import pytest

from repro.core.engine import KVEngine
from repro.cache.block_cache import BlockCache
from repro.errors import CorruptionError, TransientIOError
from repro.faults.injector import FaultConfig, FaultInjector
from repro.lsm.block import BlockHandle
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree


def make_tree(**opt_kw) -> LSMTree:
    options = LSMOptions(memtable_entries=8, entries_per_sstable=16, **opt_kw)
    tree = LSMTree(options)
    for i in range(32):
        tree.put(f"k{i:04d}", f"v{i}")
    tree.flush()
    return tree


class FlakyFetch:
    """A block source that fails ``failures`` times, then succeeds."""

    def __init__(self, tree: LSMTree, failures: int, exc=TransientIOError):
        self.tree = tree
        self.remaining = failures
        self.exc = exc
        self.calls = 0

    def __call__(self, handle: BlockHandle):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc(f"injected ({self.remaining} left)")
        return self.tree.disk.read_block(handle)


class TestTransientRetry:
    def test_retries_until_success(self):
        tree = make_tree(max_read_retries=4)
        flaky = FlakyFetch(tree, failures=3)
        tree.set_block_fetch(flaky)
        assert tree.get("k0000") == "v0"
        assert tree.read_retries_total == 3
        assert flaky.calls == 4

    def test_backoff_latency_charged_exponentially(self):
        tree = make_tree(max_read_retries=4, retry_backoff_us=50.0)
        tree.set_block_fetch(FlakyFetch(tree, failures=3))
        tree.get("k0000")
        # 50 + 100 + 200 microseconds for attempts 0, 1, 2.
        assert tree.retry_latency_us_total == pytest.approx(350.0)

    def test_budget_exhaustion_reraises(self):
        tree = make_tree(max_read_retries=2)
        tree.set_block_fetch(FlakyFetch(tree, failures=10))
        with pytest.raises(TransientIOError):
            tree.get("k0000")
        assert tree.read_retries_total == 2

    def test_zero_retries_fails_immediately(self):
        tree = make_tree(max_read_retries=0)
        flaky = FlakyFetch(tree, failures=1)
        tree.set_block_fetch(flaky)
        with pytest.raises(TransientIOError):
            tree.get("k0000")
        assert flaky.calls == 1
        assert tree.retry_latency_us_total == 0.0


class TestCorruptionRepair:
    def _corrupt_every_block(self, tree: LSMTree) -> int:
        count = 0
        for sst_id in tree.disk.live_sst_ids():
            table = tree.disk.table(sst_id)
            for block_no in range(table.num_blocks):
                table.corrupt_block(block_no)
                count += 1
        return count

    def test_point_read_repairs_and_succeeds(self):
        tree = make_tree()
        self._corrupt_every_block(tree)
        assert tree.get("k0007") == "v7"
        assert tree.corruption_recoveries_total >= 1
        assert tree.disk.corruption_repairs_total >= 1

    def test_scan_repairs_and_succeeds(self):
        tree = make_tree()
        self._corrupt_every_block(tree)
        result = tree.scan("k0000", 8)
        assert [k for k, _ in result] == [f"k{i:04d}" for i in range(8)]

    def test_repair_budget_exhaustion_reraises(self):
        tree = make_tree(max_corruption_repairs=0)
        self._corrupt_every_block(tree)
        with pytest.raises(CorruptionError):
            tree.get("k0000")


class TestEngineReadPath:
    def test_resilience_applies_through_block_cache(self):
        """With a block cache wired in, faults surface through the cache's
        fetch-through and must still be absorbed by the tree's retry loop."""
        tree = make_tree()
        injector = FaultInjector(
            FaultConfig(transient_read_rate=0.3, corruption_rate=0.1, seed=5)
        )
        tree.attach_fault_injector(injector)
        cache = BlockCache(64 * 4096, 4096, tree.disk.read_block)
        engine = KVEngine(tree, block_cache=cache)
        for i in range(32):
            assert engine.get(f"k{i:04d}") == f"v{i}", f"wrong value for key {i}"
        assert injector.stats.transient_injected > 0
        assert tree.read_retries_total >= injector.stats.transient_injected > 0

    def test_fault_free_reads_charge_no_retry_latency(self):
        tree = make_tree()
        engine = KVEngine(tree)
        for i in range(32):
            engine.get(f"k{i:04d}")
        assert tree.read_retries_total == 0
        assert tree.retry_latency_us_total == 0.0
        assert tree.disk.failed_reads_total == 0
