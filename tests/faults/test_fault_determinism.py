"""Property-style: injected transient faults never change query results.

For any seeded workload and any seeded schedule of transient read
faults, the engine must return exactly the results of a fault-free run —
faults may only move latency and I/O-attempt counters.  Corruption at a
modest rate rides along: repairs are transparent too.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import seed_database
from repro.bench.strategies import build_engine
from repro.faults.chaos import run_chaos
from repro.faults.injector import FaultConfig, FaultInjector
from repro.lsm.options import LSMOptions
from repro.workloads.generator import WorkloadGenerator, balanced_workload

OPTIONS = dict(memtable_entries=32, entries_per_sstable=64)


def _run(strategy, num_keys, ops, seed, injector=None):
    tree = seed_database(num_keys, LSMOptions(**OPTIONS), seed=7)
    engine = build_engine(strategy, tree, 128 * 1024, seed=3)
    if injector is not None:
        tree.attach_fault_injector(injector)
    generator = WorkloadGenerator(balanced_workload(num_keys), seed=seed)
    results = []
    for op in generator.ops(ops):
        if op.kind == "get":
            results.append(("get", engine.get(op.key)))
        elif op.kind == "scan":
            results.append(("scan", tuple(engine.scan(op.key, op.length))))
        elif op.kind == "put":
            engine.put(op.key, op.value or "")
        else:
            engine.delete(op.key)
    return results, tree


@pytest.mark.parametrize("fault_seed", [0, 1, 2, 3, 4])
def test_transient_faults_never_change_results(fault_seed):
    clean, _ = _run("block", num_keys=600, ops=1200, seed=11)
    injector = FaultInjector(
        FaultConfig(transient_read_rate=0.05, corruption_rate=0.005, seed=fault_seed)
    )
    faulty, faulty_tree = _run("block", num_keys=600, ops=1200, seed=11,
                               injector=injector)
    assert faulty == clean
    # The schedule really injected something; it just didn't show.
    assert injector.stats.transient_injected > 0
    assert faulty_tree.read_retries_total == injector.stats.transient_injected


@pytest.mark.parametrize("strategy", ["block", "kv", "range", "adcache"])
def test_every_cache_composition_absorbs_faults(strategy):
    clean, _ = _run(strategy, num_keys=400, ops=800, seed=23)
    injector = FaultInjector(
        FaultConfig(transient_read_rate=0.05, corruption_rate=0.005, seed=9)
    )
    faulty, _ = _run(strategy, num_keys=400, ops=800, seed=23, injector=injector)
    assert faulty == clean


def test_same_fault_seed_reproduces_the_run_exactly():
    a, tree_a = _run("block", num_keys=400, ops=800, seed=5,
                     injector=FaultInjector(FaultConfig(
                         transient_read_rate=0.05, corruption_rate=0.01, seed=42)))
    b, tree_b = _run("block", num_keys=400, ops=800, seed=5,
                     injector=FaultInjector(FaultConfig(
                         transient_read_rate=0.05, corruption_rate=0.01, seed=42)))
    assert a == b
    assert tree_a.read_retries_total == tree_b.read_retries_total
    assert tree_a.retry_latency_us_total == tree_b.retry_latency_us_total
    assert tree_a.corruption_recoveries_total == tree_b.corruption_recoveries_total


def test_run_chaos_smoke():
    """The harness end-to-end at miniature scale: no divergence, faults
    observed, blackout handled by the degraded guard."""
    report = run_chaos(
        ops=1500, num_keys=500, cache_kb=96,
        transient_read_rate=0.02, corruption_rate=0.004,
        crash_every=600, blackout_window=2, window_size=200, seed=1,
    )
    assert report.wrong_reads == 0
    assert report.faults.transient_injected > 0
    assert report.read_retries == report.faults.transient_injected
    assert report.crashes == 2
    assert report.degraded_activations >= 1
    assert report.degraded_recoveries >= 1
