"""Shared fixtures: small LSM configurations that compact quickly."""

from __future__ import annotations

import pytest

from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.keys import key_of, value_of


@pytest.fixture
def small_opts() -> LSMOptions:
    """Options scaled so a few hundred writes exercise flush + compaction."""
    return LSMOptions(memtable_entries=32, entries_per_sstable=64)


@pytest.fixture
def tree(small_opts: LSMOptions) -> LSMTree:
    """An empty tree with the small options."""
    return LSMTree(small_opts)


@pytest.fixture
def seeded_tree(small_opts: LSMOptions) -> LSMTree:
    """A tree bulk-loaded with 2000 sequential keys."""
    t = LSMTree(small_opts)
    t.bulk_load((key_of(i), value_of(i)) for i in range(2000))
    return t
