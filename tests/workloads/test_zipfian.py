"""Zipfian generator: skew behaviour, determinism, bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.zipfian import ZipfianGenerator, zeta


class TestZeta:
    def test_known_values(self):
        assert zeta(1, 0.9) == pytest.approx(1.0)
        assert zeta(3, 0.0) == pytest.approx(3.0)

    def test_cached(self):
        assert zeta(1000, 0.9) is not None
        assert zeta(1000, 0.9) == zeta(1000, 0.9)


class TestSampling:
    def test_ids_in_range(self):
        gen = ZipfianGenerator(1000, 0.9, seed=1)
        ids = gen.sample(5000)
        assert ids.min() >= 0 and ids.max() < 1000

    def test_deterministic(self):
        a = ZipfianGenerator(1000, 0.9, seed=7).sample(100)
        b = ZipfianGenerator(1000, 0.9, seed=7).sample(100)
        assert np.array_equal(a, b)

    def test_skew_concentrates_mass(self):
        n = 10_000
        skewed = ZipfianGenerator(n, 0.99, seed=1, scrambled=False).sample(20_000)
        uniform = ZipfianGenerator(n, 0.0, seed=1).sample(20_000)
        top_skewed = np.mean(skewed < n // 100)  # hottest 1% of ranks
        top_uniform = np.mean(uniform < n // 100)
        assert top_skewed > 10 * top_uniform

    def test_higher_theta_more_skew(self):
        n = 10_000
        def unique_frac(theta):
            ids = ZipfianGenerator(n, theta, seed=1).sample(10_000)
            return len(np.unique(ids)) / len(ids)
        assert unique_frac(0.99) < unique_frac(0.6) < unique_frac(0.0)

    def test_unscrambled_rank0_hottest(self):
        gen = ZipfianGenerator(1000, 0.99, seed=2, scrambled=False)
        ids = gen.sample(10_000)
        counts = np.bincount(ids, minlength=1000)
        assert counts[0] == counts.max()

    def test_scramble_spreads_hot_keys(self):
        gen = ZipfianGenerator(1000, 0.99, seed=2, scrambled=True)
        ids = gen.sample(10_000)
        counts = np.bincount(ids, minlength=1000)
        assert counts.argmax() != 0  # overwhelmingly unlikely to stay at 0

    def test_next_single(self):
        gen = ZipfianGenerator(100, 0.9, seed=3)
        value = gen.next()
        assert 0 <= value < 100

    def test_validation(self):
        with pytest.raises(ConfigError):
            ZipfianGenerator(0, 0.9)
        with pytest.raises(ConfigError):
            ZipfianGenerator(10, -0.1)

    def test_theta_at_and_above_one_supported(self):
        """The paper's skewness experiment sweeps theta to 1.2."""
        gen = ZipfianGenerator(1000, 1.2, seed=1, scrambled=False)
        ids = gen.sample(20_000)
        assert ids.min() >= 0 and ids.max() < 1000
        counts = np.bincount(ids, minlength=1000)
        assert counts[0] == counts.max()
        # theta=1.2 is more skewed than theta=0.9.
        mild = ZipfianGenerator(1000, 0.9, seed=1, scrambled=False).sample(20_000)
        assert np.mean(ids < 10) > np.mean(mild < 10)
