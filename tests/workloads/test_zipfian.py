"""Zipfian generator: skew behaviour, determinism, bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.zipfian import ZipfianGenerator, zeta


class TestZeta:
    def test_known_values(self):
        assert zeta(1, 0.9) == pytest.approx(1.0)
        assert zeta(3, 0.0) == pytest.approx(3.0)

    def test_cached(self):
        assert zeta(1000, 0.9) is not None
        assert zeta(1000, 0.9) == zeta(1000, 0.9)


class TestSampling:
    def test_ids_in_range(self):
        gen = ZipfianGenerator(1000, 0.9, seed=1)
        ids = gen.sample(5000)
        assert ids.min() >= 0 and ids.max() < 1000

    def test_deterministic(self):
        a = ZipfianGenerator(1000, 0.9, seed=7).sample(100)
        b = ZipfianGenerator(1000, 0.9, seed=7).sample(100)
        assert np.array_equal(a, b)

    def test_skew_concentrates_mass(self):
        n = 10_000
        skewed = ZipfianGenerator(n, 0.99, seed=1, scrambled=False).sample(20_000)
        uniform = ZipfianGenerator(n, 0.0, seed=1).sample(20_000)
        top_skewed = np.mean(skewed < n // 100)  # hottest 1% of ranks
        top_uniform = np.mean(uniform < n // 100)
        assert top_skewed > 10 * top_uniform

    def test_higher_theta_more_skew(self):
        n = 10_000
        def unique_frac(theta):
            ids = ZipfianGenerator(n, theta, seed=1).sample(10_000)
            return len(np.unique(ids)) / len(ids)
        assert unique_frac(0.99) < unique_frac(0.6) < unique_frac(0.0)

    def test_unscrambled_rank0_hottest(self):
        gen = ZipfianGenerator(1000, 0.99, seed=2, scrambled=False)
        ids = gen.sample(10_000)
        counts = np.bincount(ids, minlength=1000)
        assert counts[0] == counts.max()

    def test_scramble_spreads_hot_keys(self):
        gen = ZipfianGenerator(1000, 0.99, seed=2, scrambled=True)
        ids = gen.sample(10_000)
        counts = np.bincount(ids, minlength=1000)
        assert counts.argmax() != 0  # overwhelmingly unlikely to stay at 0

    def test_next_single(self):
        gen = ZipfianGenerator(100, 0.9, seed=3)
        value = gen.next()
        assert 0 <= value < 100

    def test_validation(self):
        with pytest.raises(ConfigError):
            ZipfianGenerator(0, 0.9)
        with pytest.raises(ConfigError):
            ZipfianGenerator(10, -0.1)

    def test_theta_at_and_above_one_supported(self):
        """The paper's skewness experiment sweeps theta to 1.2."""
        gen = ZipfianGenerator(1000, 1.2, seed=1, scrambled=False)
        ids = gen.sample(20_000)
        assert ids.min() >= 0 and ids.max() < 1000
        counts = np.bincount(ids, minlength=1000)
        assert counts[0] == counts.max()
        # theta=1.2 is more skewed than theta=0.9.
        mild = ZipfianGenerator(1000, 0.9, seed=1, scrambled=False).sample(20_000)
        assert np.mean(ids < 10) > np.mean(mild < 10)


class TestHotSetRotation:
    """Satellite: the deterministic hot-set rotation offset."""

    def test_rotation_is_elementwise_shift(self):
        n = 1000
        base = ZipfianGenerator(n, 0.9, seed=4, scrambled=False).sample(5000)
        for k in (1, 137, n // 2, n - 1):
            rotated = ZipfianGenerator(
                n, 0.9, seed=4, scrambled=False, offset=k
            ).sample(5000)
            assert np.array_equal((base + k) % n, rotated)

    def test_rank_distribution_unchanged(self):
        """The hot set moves; the popularity *shape* does not."""
        n = 1000
        base = ZipfianGenerator(n, 0.99, seed=7, scrambled=False).sample(20_000)
        rotated = ZipfianGenerator(
            n, 0.99, seed=7, scrambled=False, offset=400
        ).sample(20_000)
        counts_base = np.sort(np.bincount(base, minlength=n))
        counts_rot = np.sort(np.bincount(rotated, minlength=n))
        assert np.array_equal(counts_base, counts_rot)

    def test_hot_set_actually_moves(self):
        n = 1000
        rotated = ZipfianGenerator(
            n, 0.99, seed=7, scrambled=False, offset=400
        ).sample(20_000)
        counts = np.bincount(rotated, minlength=n)
        assert counts.argmax() == 400  # unscrambled rank 0 lands at offset

    def test_rotation_composes_with_scramble_and_uniform(self):
        n = 500
        scrambled = ZipfianGenerator(n, 0.9, seed=2, offset=100).sample(2000)
        uniform = ZipfianGenerator(n, 0.0, seed=2, offset=100).sample(2000)
        high = ZipfianGenerator(
            n, 1.2, seed=2, scrambled=False, offset=100
        ).sample(2000)
        for ids in (scrambled, uniform, high):
            assert ids.min() >= 0 and ids.max() < n
        assert np.bincount(high, minlength=n).argmax() == 100

    def test_offset_wraps_and_validates(self):
        gen = ZipfianGenerator(100, 0.9, seed=1, offset=250)
        assert gen.offset == 50
        with pytest.raises(ConfigError, match="offset must be >= 0"):
            ZipfianGenerator(100, 0.9, offset=-1)
