"""Workload trace recording and replay."""

from __future__ import annotations

import pytest

from repro.bench.harness import seed_database
from repro.bench.strategies import build_engine
from repro.errors import ConfigError
from repro.lsm.options import LSMOptions
from repro.workloads.generator import Operation, WorkloadGenerator, balanced_workload
from repro.workloads.keys import key_of
from repro.workloads.trace import (
    TracingSink,
    load_trace,
    record_trace,
    replay_trace,
)


class TestRoundTrip:
    def test_all_kinds_roundtrip(self, tmp_path):
        ops = [
            Operation("get", "k1"),
            Operation("scan", "k2", length=16),
            Operation("put", "k3", value="some value with spaces"),
            Operation("delete", "k4"),
        ]
        path = tmp_path / "ops.trace"
        assert record_trace(ops, path) == 4
        assert load_trace(path) == ops

    def test_generated_workload_roundtrip(self, tmp_path):
        gen = WorkloadGenerator(balanced_workload(100), seed=3)
        ops = list(gen.ops(200))
        path = tmp_path / "w.trace"
        record_trace(ops, path)
        assert load_trace(path) == ops

    def test_replay_is_lazy(self, tmp_path):
        path = tmp_path / "lazy.trace"
        record_trace([Operation("get", "k")] * 10, path)
        it = replay_trace(path)
        assert next(it) == Operation("get", "k")

    def test_empty_put_value(self, tmp_path):
        path = tmp_path / "e.trace"
        record_trace([Operation("put", "k", value="")], path)
        assert load_trace(path) == [Operation("put", "k", value="")]

    def test_bad_lines_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("x k1\n")
        with pytest.raises(ConfigError):
            load_trace(path)
        path.write_text("s k1\n")  # scan without length
        with pytest.raises(ConfigError):
            load_trace(path)

    def test_newline_in_value_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            record_trace(
                [Operation("put", "k", value="a\nb")], tmp_path / "nl.trace"
            )


class TestTracingSink:
    def test_sink_records_and_serves(self, tmp_path):
        tree = seed_database(200, LSMOptions(memtable_entries=32, entries_per_sstable=64))
        engine = build_engine("block", tree, cache_bytes=64 * 1024)
        sink = TracingSink(engine)
        assert sink.get(key_of(5)) is not None
        sink.scan(key_of(10), 4)
        sink.put(key_of(5), "new")
        sink.delete(key_of(6))
        assert [op.kind for op in sink.operations] == ["get", "scan", "put", "delete"]
        path = tmp_path / "sink.trace"
        assert sink.save(path) == 4
        assert load_trace(path) == sink.operations

    def test_replayed_trace_reproduces_engine_state(self, tmp_path):
        """Replaying a recorded trace on a fresh engine yields the same
        final answers — the pretraining-data guarantee."""
        from repro.bench.harness import apply_operation

        opts = LSMOptions(memtable_entries=32, entries_per_sstable=64)
        gen = WorkloadGenerator(balanced_workload(300), seed=9)
        ops = list(gen.ops(600))
        path = tmp_path / "repro.trace"
        record_trace(ops, path)

        tree_a = seed_database(300, opts)
        engine_a = build_engine("block", tree_a, cache_bytes=64 * 1024)
        for op in ops:
            apply_operation(engine_a, op)

        tree_b = seed_database(300, opts)
        engine_b = build_engine("block", tree_b, cache_bytes=64 * 1024)
        for op in replay_trace(path):
            apply_operation(engine_b, op)

        for i in range(0, 300, 23):
            assert engine_a.get(key_of(i)) == engine_b.get(key_of(i))


class TestTaggedTraces:
    """Satellite: tenant-tagged round trips and malformed-line paths."""

    def test_tagged_roundtrip(self, tmp_path):
        from repro.workloads.trace import load_tagged_trace

        pairs = [
            ("client00", Operation("get", "k1")),
            ("client01", Operation("scan", "k2", length=8)),
            ("client00", Operation("put", "k3", value="v with spaces")),
            ("client01", Operation("delete", "k4")),
        ]
        path = tmp_path / "tagged.trace"
        assert record_trace(pairs, path) == 4
        assert load_tagged_trace(path) == pairs

    def test_mixed_tagged_and_bare_lines(self, tmp_path):
        from repro.workloads.trace import load_tagged_trace

        path = tmp_path / "mixed.trace"
        record_trace(
            [Operation("get", "a"), ("t1", Operation("get", "b"))], path
        )
        assert load_tagged_trace(path) == [
            (None, Operation("get", "a")),
            ("t1", Operation("get", "b")),
        ]
        # The untagged reader sees the same ops with tags dropped.
        assert load_trace(path) == [
            Operation("get", "a"), Operation("get", "b")
        ]

    def test_bad_tenant_tag_reports_lineno(self, tmp_path):
        from repro.workloads.trace import load_tagged_trace

        path = tmp_path / "badtag.trace"
        path.write_text("g k1\n@ g k2\n")
        with pytest.raises(
            ConfigError, match="bad tenant tag on trace line 2"
        ):
            load_tagged_trace(path)
        path.write_text("g k1\n@lonely\n")
        with pytest.raises(
            ConfigError, match="bad tenant tag on trace line 2"
        ):
            load_tagged_trace(path)

    def test_whitespace_tenant_rejected_at_record(self, tmp_path):
        with pytest.raises(ConfigError, match="whitespace-free"):
            record_trace(
                [("bad tenant", Operation("get", "k"))], tmp_path / "x.trace"
            )
        with pytest.raises(ConfigError, match="whitespace-free"):
            record_trace([("", Operation("get", "k"))], tmp_path / "y.trace")


class TestMalformedLines:
    """Satellite: every decode error carries the 1-based line number."""

    def test_unknown_code_lineno(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("g k1\ng k2\nx k3\n")
        with pytest.raises(ConfigError, match="bad trace line 3"):
            load_trace(path)

    def test_missing_key_lineno(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("g\n")
        with pytest.raises(ConfigError, match="bad trace line 1"):
            load_trace(path)

    def test_scan_without_length_lineno(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("g k1\ns k2\n")
        with pytest.raises(ConfigError, match="bad scan line 2"):
            load_trace(path)

    def test_non_numeric_scan_length_lineno(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("g k1\ng k2\ns k3 sixteen\n")
        with pytest.raises(
            ConfigError, match="bad scan length on trace line 3"
        ):
            load_trace(path)

    def test_blank_lines_do_not_shift_linenos(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("g k1\n\n\nx k2\n")
        with pytest.raises(ConfigError, match="bad trace line 4"):
            load_trace(path)
