"""Workload specs and operation streams."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workloads.dynamic import DYNAMIC_PHASES, dynamic_phase_specs
from repro.workloads.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    balanced_workload,
    long_scan_workload,
    point_lookup_workload,
    short_scan_workload,
)
from repro.workloads.keys import index_of, key_of, value_of


class TestKeys:
    def test_key_width_is_24_bytes(self):
        assert len(key_of(0)) == 24
        assert len(key_of(10**9)) == 24

    def test_order_preserving(self):
        assert key_of(5) < key_of(50) < key_of(500)

    def test_roundtrip(self):
        assert index_of(key_of(12345)) == 12345

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            key_of(-1)
        with pytest.raises(ConfigError):
            index_of("bogus")

    def test_value_versions_differ(self):
        assert value_of(1, 0) != value_of(1, 1)


class TestSpecValidation:
    def test_ratios_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(num_keys=10, get_ratio=0.5)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(num_keys=10, get_ratio=1.5, write_ratio=-0.5)

    def test_avg_scan_length(self):
        spec = WorkloadSpec(
            num_keys=10, short_scan_ratio=0.5, long_scan_ratio=0.5
        )
        assert spec.avg_scan_length == (16 + 64) / 2
        assert point_lookup_workload(10).avg_scan_length == 0.0

    def test_static_workload_constructors(self):
        n = 100
        assert point_lookup_workload(n).get_ratio == 1.0
        assert short_scan_workload(n).short_scan_ratio == 1.0
        assert long_scan_workload(n).long_scan_ratio == 1.0
        balanced = balanced_workload(n)
        assert balanced.get_ratio == pytest.approx(1 / 3)
        assert balanced.write_ratio == pytest.approx(1 / 3)


class TestGenerator:
    def test_exact_count(self):
        gen = WorkloadGenerator(balanced_workload(1000), seed=1)
        assert len(list(gen.ops(500))) == 500

    def test_deterministic(self):
        a = list(WorkloadGenerator(balanced_workload(1000), seed=3).ops(50))
        b = list(WorkloadGenerator(balanced_workload(1000), seed=3).ops(50))
        assert a == b

    def test_mix_approximates_spec(self):
        spec = WorkloadSpec(
            num_keys=1000, get_ratio=0.5, short_scan_ratio=0.25, write_ratio=0.25
        )
        ops = list(WorkloadGenerator(spec, seed=2).ops(4000))
        gets = sum(1 for op in ops if op.kind == "get")
        scans = sum(1 for op in ops if op.kind == "scan")
        writes = sum(1 for op in ops if op.kind == "put")
        assert abs(gets / 4000 - 0.5) < 0.05
        assert abs(scans / 4000 - 0.25) < 0.05
        assert abs(writes / 4000 - 0.25) < 0.05

    def test_scan_lengths_match_spec(self):
        spec = WorkloadSpec(num_keys=1000, short_scan_ratio=0.5, long_scan_ratio=0.5)
        lengths = {op.length for op in WorkloadGenerator(spec, seed=1).ops(200)}
        assert lengths == {16, 64}

    def test_scans_never_run_past_keyspace(self):
        spec = long_scan_workload(100)  # tiny keyspace, length-64 scans
        for op in WorkloadGenerator(spec, seed=1).ops(300):
            assert index_of(op.key) + op.length <= 100

    def test_put_values_versioned(self):
        spec = WorkloadSpec(num_keys=10, write_ratio=1.0, point_skew=0.0)
        values = [op.value for op in WorkloadGenerator(spec, seed=1).ops(20)]
        assert len(set(values)) == 20  # every write distinct


class TestDynamicPhases:
    def test_table3_ratios(self):
        assert DYNAMIC_PHASES["A"] == (1, 1, 97, 1)
        assert DYNAMIC_PHASES["F"] == (1, 12, 12, 75)
        assert all(sum(v) == 100 for v in DYNAMIC_PHASES.values())

    def test_phase_specs_built_in_order(self):
        specs = dynamic_phase_specs(1000)
        assert [name for name, _ in specs] == list("ABCDEF")
        phase_a = specs[0][1]
        assert phase_a.long_scan_ratio == pytest.approx(0.97)
        phase_f = specs[5][1]
        assert phase_f.write_ratio == pytest.approx(0.75)

    def test_subset_selection(self):
        specs = dynamic_phase_specs(1000, phases="CD")
        assert [name for name, _ in specs] == ["C", "D"]


class TestSpecValidationMessages:
    """Satellite: each rejection names the workload, field, and value."""

    def test_zero_key_space(self):
        with pytest.raises(ConfigError, match=r"'empty'.*num_keys.*got 0"):
            WorkloadSpec(num_keys=0, get_ratio=1.0, name="empty")

    def test_negative_ratio_names_the_field(self):
        with pytest.raises(
            ConfigError, match=r"write_ratio must be non-negative, got -0\.5"
        ):
            WorkloadSpec(num_keys=10, get_ratio=1.5, write_ratio=-0.5)

    def test_over_unit_sum_reports_breakdown(self):
        with pytest.raises(
            ConfigError, match=r"must sum to 1, got 1\.5 \(get_ratio=1"
        ):
            WorkloadSpec(num_keys=10, get_ratio=1.0, write_ratio=0.5)

    def test_under_unit_sum_rejected(self):
        with pytest.raises(ConfigError, match=r"must sum to 1, got 0\.4"):
            WorkloadSpec(num_keys=10, get_ratio=0.4)

    def test_scan_length_and_skew_named(self):
        with pytest.raises(
            ConfigError, match="long_scan_length must be positive"
        ):
            WorkloadSpec(num_keys=10, get_ratio=1.0, long_scan_length=0)
        with pytest.raises(ConfigError, match="point_skew must be >= 0"):
            WorkloadSpec(num_keys=10, get_ratio=1.0, point_skew=-0.1)

    def test_negative_hot_offset_rejected(self):
        with pytest.raises(ConfigError, match="hot_offset must be >= 0"):
            WorkloadSpec(num_keys=10, get_ratio=1.0, hot_offset=-3)

    def test_hot_offset_reaches_generators(self):
        spec = WorkloadSpec(
            num_keys=100, get_ratio=1.0, scrambled=False, hot_offset=40
        )
        gen = WorkloadGenerator(spec, seed=1)
        assert gen._point_keys.offset == 40
        assert gen._scan_keys.offset == 40
