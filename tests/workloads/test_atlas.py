"""Atlas matrix runner: outcomes, scoring, rendering, determinism gate."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.workloads.atlas import (
    AtlasConfig,
    experiments_section,
    run_atlas,
)

#: One shared tiny sweep (2 scenarios × 2 strategies, double-run) so the
#: suite pays for the simulator once.
TINY = AtlasConfig(
    scenarios=("flash_crowd", "scan_storm"),
    strategies=("adcache", "block"),
    seed=4,
    num_keys=500,
    tenants=2,
    phase_ops=60,
    arrival_rate_ops_s=4000.0,
    cache_kb=64,
    window_size=100,
    rebalance_every=300,
)


@pytest.fixture(scope="module")
def tiny_result():
    lines = []
    result = run_atlas(TINY, progress=lines.append)
    assert len(lines) == 4
    return result


class TestConfig:
    def test_defaults_cover_registry(self):
        config = AtlasConfig()
        assert len(config.scenarios) >= 6
        assert len(config.strategies) == 4

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            AtlasConfig(scenarios=("nope",))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError, match="unknown strategy"):
            AtlasConfig(strategies=("nope",))


class TestMatrix:
    def test_every_cell_ran_and_verified(self, tiny_result):
        assert len(tiny_result.cells) == 4
        assert tiny_result.deterministic
        assert tiny_result.failures() == []
        for cell in tiny_result.cells:
            assert cell.issued > 0
            assert cell.issued == cell.completed + cell.rejected
            assert 0.0 <= cell.hit_rate <= 1.0
            assert cell.io_per_op >= 0.0
            assert len(cell.fingerprint) == 64
            assert cell.phase_transitions >= 5

    def test_winner_per_scenario(self, tiny_result):
        assert set(tiny_result.winners) == set(TINY.scenarios)
        for winner in tiny_result.winners.values():
            assert winner in TINY.strategies
        assert sum(tiny_result.wins.values()) == len(TINY.scenarios)

    def test_winner_has_lowest_io(self, tiny_result):
        for scenario, winner in tiny_result.winners.items():
            cells = [c for c in tiny_result.cells if c.scenario == scenario]
            best = min(c.io_per_op for c in cells)
            won = next(c for c in cells if c.strategy == winner)
            assert won.io_per_op == best

    def test_reruns_identically(self, tiny_result):
        again = run_atlas(TINY)
        assert [c.fingerprint for c in again.cells] == [
            c.fingerprint for c in tiny_result.cells
        ]


class TestRendering:
    def test_json_is_machine_readable(self, tiny_result):
        doc = json.loads(tiny_result.to_json())
        assert doc["deterministic"] is True
        assert doc["scenarios"] == list(TINY.scenarios)
        assert len(doc["cells"]) == 4
        cell = doc["cells"][0]
        for key in ("scenario", "strategy", "fingerprint", "hit_rate",
                    "io_per_op", "p99_us"):
            assert key in cell

    def test_markdown_report(self, tiny_result):
        text = tiny_result.to_markdown()
        assert "**verified**" in text
        for scenario in TINY.scenarios:
            assert scenario in text
        for strategy in TINY.strategies:
            assert strategy in text
        assert "Wins (lowest simulated I/O per op)" in text

    def test_experiments_section_appends(self, tiny_result, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        path.write_text("# Experiments\n")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(experiments_section(tiny_result))
        text = path.read_text()
        assert text.startswith("# Experiments")
        assert "## Scenario atlas" in text
        assert "flash_crowd" in text
