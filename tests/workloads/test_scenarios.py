"""Scenario atlas schedules: registry, validation, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workloads.generator import WorkloadSpec
from repro.workloads.scenarios import (
    SCENARIOS,
    ScenarioParams,
    ScenarioPhase,
    ScenarioSchedule,
    TenantPhase,
    build_scenario,
    compose_schedules,
    describe_scenarios,
    interpolate_specs,
    scenario_names,
)

#: Small enough for per-scenario serve tests, big enough to be real.
TINY = ScenarioParams(
    num_keys=600, tenants=2, phase_ops=80, arrival_rate_ops_s=4000.0, seed=5
)


class TestRegistry:
    def test_at_least_six_scenarios(self):
        assert len(SCENARIOS) >= 6

    def test_names_sorted_and_described(self):
        names = scenario_names()
        assert names == sorted(names)
        text = describe_scenarios()
        for name in names:
            assert name in text
            assert SCENARIOS[name].description

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            build_scenario("nope", TINY)


class TestSchedules:
    @pytest.mark.parametrize("name", scenario_names())
    def test_build_is_pure(self, name):
        a = build_scenario(name, TINY)
        b = build_scenario(name, TINY)
        assert a == b

    @pytest.mark.parametrize("name", scenario_names())
    def test_shape(self, name):
        schedule = build_scenario(name, TINY)
        assert schedule.name == name
        assert schedule.seed == TINY.seed
        assert len(schedule.phases) >= 5
        assert schedule.total_ops > 0
        assert schedule.total_duration_us > 0
        assert schedule.num_keys >= TINY.num_keys
        starts = schedule.phase_starts()
        assert starts[0] == 0.0
        assert starts == sorted(starts)
        # Every tenant's per-phase budgets add up to its total.
        assert sum(
            schedule.tenant_total_ops(t) for t in schedule.tenant_names
        ) == schedule.total_ops

    def test_flash_crowd_spikes_one_tenant(self):
        schedule = build_scenario("flash_crowd", TINY)
        star = schedule.tenant_names[0]
        other = schedule.tenant_names[1]
        assert schedule.tenant_total_ops(star) > 2 * schedule.tenant_total_ops(
            other
        )

    def test_tenant_churn_staggers_arrivals(self):
        schedule = build_scenario("tenant_churn", TINY)
        last = schedule.tenant_names[-1]
        # The last tenant is dormant (absent) in phase 0 and the
        # founding tenant is gone from the final phase.
        assert last not in schedule.phases[0].tenants
        assert schedule.tenant_names[0] not in schedule.phases[-1].tenants

    def test_keyspace_growth_preloads_a_prefix(self):
        schedule = build_scenario("keyspace_growth", TINY)
        assert schedule.preload_keys == TINY.num_keys
        assert schedule.num_keys == 3 * TINY.num_keys

    def test_zipf_drift_rotates_hot_set(self):
        schedule = build_scenario("zipf_drift", TINY)
        offsets = [
            next(iter(p.tenants.values())).spec.hot_offset
            for p in schedule.phases
        ]
        skews = [
            next(iter(p.tenants.values())).spec.point_skew
            for p in schedule.phases
        ]
        assert offsets == sorted(offsets) and offsets[-1] > offsets[0]
        assert skews[0] == pytest.approx(0.6)
        assert skews[-1] == pytest.approx(1.1)


class TestValidation:
    def _phase(self, ops=10):
        spec = WorkloadSpec(num_keys=100, get_ratio=1.0)
        return ScenarioPhase(
            "p", 1000.0, {"t0": TenantPhase(spec, ops)}
        )

    def test_needs_phases(self):
        with pytest.raises(ConfigError, match="needs >= 1 phase"):
            ScenarioSchedule("s", 0, (), num_keys=100, preload_keys=100)

    def test_phase_duration_positive(self):
        with pytest.raises(ConfigError, match="duration_us"):
            ScenarioPhase("p", 0.0, {})

    def test_tenant_phase_bounds(self):
        spec = WorkloadSpec(num_keys=10, get_ratio=1.0)
        with pytest.raises(ConfigError, match="ops must be >= 0"):
            TenantPhase(spec, -1)
        with pytest.raises(ConfigError, match="rate_scale"):
            TenantPhase(spec, 1, rate_scale=-0.5)

    def test_spec_must_fit_keyspace(self):
        spec = WorkloadSpec(num_keys=500, get_ratio=1.0)
        phase = ScenarioPhase("p", 1000.0, {"t0": TenantPhase(spec, 5)})
        with pytest.raises(ConfigError, match="keyspace is 100"):
            ScenarioSchedule("s", 0, (phase,), num_keys=100, preload_keys=100)

    def test_preload_within_keyspace(self):
        with pytest.raises(ConfigError, match="preload_keys"):
            ScenarioSchedule(
                "s", 0, (self._phase(),), num_keys=100, preload_keys=101
            )

    def test_idle_tenant_rejected(self):
        with pytest.raises(ConfigError, match="never"):
            ScenarioSchedule(
                "s", 0, (self._phase(ops=0),), num_keys=100, preload_keys=100
            )


class TestInterpolation:
    def test_endpoints_and_monotone_ramp(self):
        start = WorkloadSpec(
            num_keys=100, get_ratio=0.8, write_ratio=0.2, point_skew=0.6
        )
        end = WorkloadSpec(
            num_keys=100, get_ratio=0.2, write_ratio=0.8, point_skew=1.1
        )
        specs = interpolate_specs(start, end, 5)
        assert len(specs) == 5
        assert specs[0].get_ratio == pytest.approx(0.8)
        assert specs[-1].write_ratio == pytest.approx(0.8)
        assert specs[-1].point_skew == pytest.approx(1.1)
        writes = [s.write_ratio for s in specs]
        assert writes == sorted(writes)
        for spec in specs:  # every step is itself a valid spec
            total = (
                spec.get_ratio + spec.short_scan_ratio + spec.long_scan_ratio
                + spec.write_ratio + spec.delete_ratio
            )
            assert total == pytest.approx(1.0)

    def test_needs_two_steps(self):
        spec = WorkloadSpec(num_keys=10, get_ratio=1.0)
        with pytest.raises(ConfigError, match=">= 2 steps"):
            interpolate_specs(spec, spec, 1)


class TestCompose:
    def test_concatenates_phases(self):
        a = build_scenario("scan_storm", TINY)
        b = build_scenario("write_flood", TINY)
        combo = compose_schedules("combo", [a, b])
        assert len(combo.phases) == len(a.phases) + len(b.phases)
        assert combo.total_ops == a.total_ops + b.total_ops
        assert combo.phases[0].name.startswith("scan_storm:")
        assert combo.phases[-1].name.startswith("write_flood:")
        assert combo.num_keys == max(a.num_keys, b.num_keys)
        assert combo.arrival_rate_ops_s == a.arrival_rate_ops_s

    def test_empty_rejected(self):
        with pytest.raises(ConfigError, match=">= 1 schedule"):
            compose_schedules("x", [])
