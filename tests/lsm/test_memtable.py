"""MemTable: sorted buffer semantics, tombstones, iteration."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.memtable import MemTable


class TestBasics:
    def test_put_get(self):
        m = MemTable()
        m.put("a", "1")
        assert m.get("a") == (True, "1")

    def test_get_absent(self):
        assert MemTable().get("x") == (False, None)

    def test_overwrite(self):
        m = MemTable()
        m.put("a", "1")
        m.put("a", "2")
        assert m.get("a") == (True, "2")
        assert len(m) == 1

    def test_delete_records_tombstone(self):
        m = MemTable()
        m.put("a", "1")
        m.delete("a")
        assert m.get("a") == (True, None)

    def test_delete_of_absent_key_still_tombstones(self):
        m = MemTable()
        m.delete("ghost")
        assert m.get("ghost") == (True, None)
        assert len(m) == 1

    def test_bool_and_len(self):
        m = MemTable()
        assert not m
        m.put("a", "1")
        assert m and len(m) == 1


class TestIteration:
    def test_entries_sorted(self):
        m = MemTable()
        for k in ["c", "a", "b"]:
            m.put(k, k.upper())
        assert [k for k, _ in m.entries()] == ["a", "b", "c"]

    def test_entries_from(self):
        m = MemTable()
        for k in ["a", "c", "e"]:
            m.put(k, k)
        assert [k for k, _ in m.entries_from("b")] == ["c", "e"]

    def test_entries_include_tombstones(self):
        m = MemTable()
        m.put("a", "1")
        m.delete("b")
        assert list(m.entries()) == [("a", "1"), ("b", None)]

    def test_sorted_view_refreshes_after_mutation(self):
        m = MemTable()
        m.put("b", "1")
        list(m.entries())  # force sort
        m.put("a", "2")
        assert [k for k, _ in m.entries()] == ["a", "b"]

    def test_approximate_bytes(self):
        m = MemTable()
        m.put("a", "1")
        m.put("b", "2")
        assert m.approximate_bytes(24, 1000) == 2 * 1024


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.text(min_size=1, max_size=8), st.text(max_size=8)),
        max_size=60,
    )
)
def test_property_matches_dict_model(pairs):
    """MemTable behaves like a dict plus sortedness."""
    m = MemTable()
    model = {}
    for k, v in pairs:
        m.put(k, v)
        model[k] = v
    for k, v in model.items():
        assert m.get(k) == (True, v)
    assert [k for k, _ in m.entries()] == sorted(model)
