"""LSMTree facade: reads, writes, scans, stalls, bulk loading."""

from __future__ import annotations

import pytest

from repro.errors import ClosedError, StorageError, WriteStallError
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.keys import key_of, value_of


class TestReadWrite:
    def test_put_get_roundtrip(self, tree):
        tree.put("a", "1")
        assert tree.get("a") == "1"

    def test_get_absent(self, tree):
        assert tree.get("nope") is None

    def test_delete_shadows_older_value(self, tree):
        tree.put("a", "1")
        tree.flush()
        tree.delete("a")
        assert tree.get("a") is None

    def test_overwrite_across_flushes(self, tree):
        tree.put("a", "old")
        tree.flush()
        tree.put("a", "new")
        assert tree.get("a") == "new"

    def test_get_reads_through_levels(self, seeded_tree):
        for i in range(0, 2000, 113):
            assert seeded_tree.get(key_of(i)) == value_of(i)

    def test_memtable_vs_sstable_split_paths(self, tree):
        tree.put("mem", "1")
        assert tree.get_from_memtable("mem") == (True, "1")
        assert tree.get_from_sstables("mem") is None
        tree.flush()
        assert tree.get_from_memtable("mem") == (False, None)
        assert tree.get_from_sstables("mem") == "1"


class TestScans:
    def test_scan_merges_levels_and_memtable(self, seeded_tree):
        seeded_tree.put(key_of(1000), "fresh")
        result = seeded_tree.scan(key_of(999), 3)
        assert result == [
            (key_of(999), value_of(999)),
            (key_of(1000), "fresh"),
            (key_of(1001), value_of(1001)),
        ]

    def test_scan_skips_deleted(self, seeded_tree):
        seeded_tree.delete(key_of(501))
        result = seeded_tree.scan(key_of(500), 3)
        assert [k for k, _ in result] == [key_of(500), key_of(502), key_of(503)]

    def test_scan_past_end_truncated(self, seeded_tree):
        result = seeded_tree.scan(key_of(1998), 10)
        assert [k for k, _ in result] == [key_of(1998), key_of(1999)]

    def test_scan_counts_disk_reads(self, seeded_tree):
        before = seeded_tree.sst_reads_total
        seeded_tree.scan(key_of(100), 16)
        assert seeded_tree.sst_reads_total > before

    def test_scan_seek_touches_each_overlapping_run(self, small_opts):
        tree = LSMTree(small_opts)
        tree.bulk_load((key_of(i), value_of(i)) for i in range(500))
        runs_before = tree.num_sorted_runs
        reads_before = tree.sst_reads_total
        tree.scan(key_of(100), 4)
        reads = tree.sst_reads_total - reads_before
        # At least one block per run that overlaps; at most a few extra.
        assert reads >= 1
        assert reads <= runs_before + (4 // small_opts.entries_per_block) + 2


class TestStalls:
    def test_write_stall_raises_without_auto_compact(self):
        opts = LSMOptions(
            memtable_entries=8,
            entries_per_sstable=16,
            auto_compact=False,
            level0_file_num_compaction_trigger=2,
            level0_slowdown_writes_trigger=2,
            level0_stop_writes_trigger=3,
        )
        tree = LSMTree(opts)
        with pytest.raises(WriteStallError):
            for i in range(200):
                tree.put(key_of(i), "v")

    def test_slowdowns_counted(self):
        opts = LSMOptions(memtable_entries=8, entries_per_sstable=16)
        tree = LSMTree(opts)
        for i in range(400):
            tree.put(key_of(i), "v")
        assert tree.write_slowdowns_total >= 0  # counter exists and is sane


class TestBulkLoad:
    def test_bulk_load_roundtrip(self, small_opts):
        tree = LSMTree(small_opts)
        tree.bulk_load((key_of(i), value_of(i)) for i in range(3000))
        assert tree.get(key_of(1500)) == value_of(1500)
        assert [k for k, _ in tree.scan(key_of(0), 3)] == [
            key_of(0),
            key_of(1),
            key_of(2),
        ]

    def test_bulk_load_spreads_levels(self, small_opts):
        tree = LSMTree(small_opts)
        tree.bulk_load((key_of(i), value_of(i)) for i in range(3000))
        assert tree.num_levels >= 2

    def test_bulk_load_requires_empty(self, small_opts):
        tree = LSMTree(small_opts)
        tree.put("a", "1")
        with pytest.raises(StorageError):
            tree.bulk_load([("b", "2")])

    def test_bulk_load_requires_sorted_unique(self, small_opts):
        tree = LSMTree(small_opts)
        with pytest.raises(StorageError):
            tree.bulk_load([("b", "1"), ("a", "2")])
        tree2 = LSMTree(small_opts)
        with pytest.raises(StorageError):
            tree2.bulk_load([("a", "1"), ("a", "2")])


class TestLifecycle:
    def test_close_flushes_and_blocks_ops(self, tree):
        tree.put("a", "1")
        tree.close()
        assert tree.levels.total_entries() == 1
        with pytest.raises(ClosedError):
            tree.get("a")
        with pytest.raises(ClosedError):
            tree.put("b", "2")

    def test_context_manager(self, small_opts):
        with LSMTree(small_opts) as tree:
            tree.put("a", "1")
        with pytest.raises(ClosedError):
            tree.get("a")

    def test_wal_protocol(self, tree):
        tree.put("a", "1")
        assert tree.wal.appends_total == 1
        assert len(tree.wal) == 1
        tree.flush()
        assert len(tree.wal) == 0  # truncated with the flush
