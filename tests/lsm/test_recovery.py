"""WAL crash recovery: acknowledged writes survive a crash."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.keys import key_of, value_of


def small_tree():
    return LSMTree(LSMOptions(memtable_entries=64, entries_per_sstable=128))


class TestRecovery:
    def test_memtable_writes_survive_crash(self):
        tree = small_tree()
        tree.put("a", "1")
        tree.put("b", "2")
        replayed = tree.simulate_crash_and_recover()
        assert replayed == 2
        assert tree.get("a") == "1" and tree.get("b") == "2"

    def test_tombstones_survive_crash(self):
        tree = small_tree()
        tree.put("a", "1")
        tree.flush()  # a is durable in an SSTable
        tree.delete("a")  # tombstone only in memtable + WAL
        tree.simulate_crash_and_recover()
        assert tree.get("a") is None

    def test_flushed_data_unaffected(self):
        tree = small_tree()
        for i in range(100):
            tree.put(key_of(i), value_of(i))
        tree.flush()
        tree.put(key_of(200), "volatile")
        tree.simulate_crash_and_recover()
        assert tree.get(key_of(50)) == value_of(50)
        assert tree.get(key_of(200)) == "volatile"

    def test_recovery_with_empty_wal(self):
        tree = small_tree()
        tree.put("a", "1")
        tree.flush()  # truncates the WAL
        assert tree.simulate_crash_and_recover() == 0
        assert tree.get("a") == "1"

    def test_overwrite_order_preserved(self):
        tree = small_tree()
        tree.put("k", "old")
        tree.put("k", "new")
        tree.simulate_crash_and_recover()
        assert tree.get("k") == "new"


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "flush"]),
            st.sampled_from([f"k{i}" for i in range(10)]),
            st.text(min_size=1, max_size=4),
        ),
        max_size=60,
    )
)
def test_property_crash_never_loses_acknowledged_writes(ops):
    tree = LSMTree(LSMOptions(memtable_entries=8, entries_per_sstable=16))
    model = {}
    for kind, key, value in ops:
        if kind == "put":
            tree.put(key, value)
            model[key] = value
        elif kind == "delete":
            tree.delete(key)
            model.pop(key, None)
        else:
            tree.flush()
    tree.simulate_crash_and_recover()
    for key in {k for _, k, _ in ops}:
        assert tree.get(key) == model.get(key)
