"""Simulated disk: metered reads, lifecycle, listeners."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.lsm.block import BlockHandle
from repro.lsm.sstable import SSTable
from repro.lsm.storage import SimulatedDisk


def installed_table(disk, n=8):
    table = SSTable.from_entries(
        disk.allocate_sst_id(), [(f"k{i:03d}", "v") for i in range(n)], 4
    )
    disk.install(table)
    return table


class TestLifecycle:
    def test_ids_monotonic(self):
        disk = SimulatedDisk()
        assert disk.allocate_sst_id() < disk.allocate_sst_id()

    def test_install_and_delete(self):
        disk = SimulatedDisk()
        table = installed_table(disk)
        assert disk.has(table.sst_id)
        disk.delete(table.sst_id)
        assert not disk.has(table.sst_id)
        assert disk.sstables_deleted_total == 1

    def test_double_install_rejected(self):
        disk = SimulatedDisk()
        table = installed_table(disk)
        with pytest.raises(StorageError):
            disk.install(table)

    def test_delete_unknown_rejected(self):
        with pytest.raises(StorageError):
            SimulatedDisk().delete(42)


class TestIdempotenceObservability:
    """Lifecycle violations must name the offender and the disk state."""

    def test_double_install_message_names_id_and_live_count(self):
        disk = SimulatedDisk()
        installed_table(disk)
        table = installed_table(disk)
        with pytest.raises(StorageError) as exc:
            disk.install(table)
        message = str(exc.value)
        assert f"sst id {table.sst_id}" in message
        assert "2 tables live" in message

    def test_double_delete_message_names_id_and_live_count(self):
        disk = SimulatedDisk()
        table = installed_table(disk)
        keeper = installed_table(disk)
        disk.delete(table.sst_id)
        with pytest.raises(StorageError) as exc:
            disk.delete(table.sst_id)
        message = str(exc.value)
        assert f"sst id {table.sst_id}" in message
        assert "1 tables live" in message
        assert disk.has(keeper.sst_id)
        assert disk.sstables_deleted_total == 1  # failed delete not counted

    def test_read_of_deleted_sst_names_handle_and_live_count(self):
        disk = SimulatedDisk()
        table = installed_table(disk)
        disk.delete(table.sst_id)
        with pytest.raises(StorageError) as exc:
            disk.read_block(BlockHandle(table.sst_id, 0))
        message = str(exc.value)
        assert str(table.sst_id) in message
        assert "0 tables live" in message
        assert disk.block_reads_total == 0


class TestMeteredReads:
    def test_read_counts(self):
        disk = SimulatedDisk()
        table = installed_table(disk)
        disk.read_block(BlockHandle(table.sst_id, 0))
        disk.read_block(BlockHandle(table.sst_id, 1))
        assert disk.block_reads_total == 2
        assert disk.bytes_read_total == 2 * table.block_size

    def test_read_after_delete_fails(self):
        disk = SimulatedDisk()
        table = installed_table(disk)
        disk.delete(table.sst_id)
        with pytest.raises(StorageError):
            disk.read_block(BlockHandle(table.sst_id, 0))

    def test_read_listener_fires(self):
        disk = SimulatedDisk()
        table = installed_table(disk)
        seen = []
        disk.add_read_listener(seen.append)
        handle = BlockHandle(table.sst_id, 0)
        disk.read_block(handle)
        assert seen == [handle]
        disk.remove_read_listener(seen.append)
        disk.read_block(handle)
        assert len(seen) == 1

    def test_total_entries(self):
        disk = SimulatedDisk()
        installed_table(disk, n=8)
        installed_table(disk, n=4)
        assert disk.total_entries() == 12
        assert disk.num_tables == 2
