"""Write-ahead log: append ordering, truncation, replay."""

from __future__ import annotations

from repro.lsm.wal import WriteAheadLog


class TestWAL:
    def test_append_and_len(self):
        wal = WriteAheadLog()
        wal.append("a", "1")
        wal.append("b", None)
        assert len(wal) == 2
        assert wal.appends_total == 2

    def test_records_preserve_order(self):
        wal = WriteAheadLog()
        wal.append("b", "1")
        wal.append("a", "2")
        assert wal.records() == [("b", "1"), ("a", "2")]

    def test_truncate_clears_and_counts(self):
        wal = WriteAheadLog()
        wal.append("a", "1")
        dropped = wal.truncate()
        assert dropped == 1
        assert len(wal) == 0
        assert wal.truncations_total == 1

    def test_replay_matches_records(self):
        wal = WriteAheadLog()
        wal.append("k", "v")
        wal.append("k", None)
        assert wal.replay() == wal.records()

    def test_tombstones_survive_roundtrip(self):
        wal = WriteAheadLog()
        wal.append("gone", None)
        assert wal.replay() == [("gone", None)]
