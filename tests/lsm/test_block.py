"""Data blocks: lookup, range extraction, handle identity."""

from __future__ import annotations

import pytest

from repro.lsm.block import BlockHandle, DataBlock


def make_block(keys, sst_id=1, block_no=0):
    return DataBlock(BlockHandle(sst_id, block_no), [(k, f"v-{k}") for k in keys])


class TestBlockHandle:
    def test_equality_and_hash(self):
        assert BlockHandle(1, 2) == BlockHandle(1, 2)
        assert hash(BlockHandle(1, 2)) == hash(BlockHandle(1, 2))
        assert BlockHandle(1, 2) != BlockHandle(2, 2)

    def test_ordering(self):
        assert BlockHandle(1, 5) < BlockHandle(2, 0)
        assert BlockHandle(1, 1) < BlockHandle(1, 2)


class TestDataBlock:
    def test_get_present(self):
        block = make_block(["a", "c", "e"])
        assert block.get("c") == (True, "v-c")

    def test_get_absent_between_keys(self):
        block = make_block(["a", "c", "e"])
        assert block.get("b") == (False, None)

    def test_get_tombstone_is_found(self):
        block = DataBlock(BlockHandle(1, 0), [("a", "1"), ("b", None)])
        assert block.get("b") == (True, None)

    def test_first_last_key(self):
        block = make_block(["b", "d", "f"])
        assert block.first_key == "b"
        assert block.last_key == "f"

    def test_entries_from_midpoint(self):
        block = make_block(["a", "c", "e"])
        assert [k for k, _ in block.entries_from("b")] == ["c", "e"]

    def test_entries_from_before_start(self):
        block = make_block(["a", "c"])
        assert [k for k, _ in block.entries_from("")] == ["a", "c"]

    def test_entries_from_past_end(self):
        block = make_block(["a", "c"])
        assert block.entries_from("z") == []

    def test_len(self):
        assert len(make_block(["a", "b", "c"])) == 3

    def test_keys_sorted(self):
        block = make_block(["a", "b", "c"])
        assert block.keys() == ["a", "b", "c"]
