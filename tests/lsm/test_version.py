"""Level structure: run counting, overlap queries, file bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.lsm.sstable import SSTable
from repro.lsm.version import LevelState


def table(sst_id, start, n=4):
    entries = [(f"k{start + i:05d}", "v") for i in range(n)]
    return SSTable.from_entries(sst_id, entries, 4)


class TestLevel0:
    def test_newest_first(self):
        levels = LevelState(4)
        levels.add_level0(table(1, 0))
        levels.add_level0(table(2, 0))
        assert [t.sst_id for t in levels.level_files(0)] == [2, 1]

    def test_run_counting(self):
        levels = LevelState(4)
        levels.add_level0(table(1, 0))
        levels.add_level0(table(2, 0))
        levels.add_to_level(2, table(3, 100))
        assert levels.num_sorted_runs == 3  # two L0 + one deeper level
        assert levels.num_levels == 3
        assert levels.level0_file_count == 2


class TestSortedLevels:
    def test_add_keeps_order(self):
        levels = LevelState(4)
        levels.add_to_level(1, table(2, 100))
        levels.add_to_level(1, table(1, 0))
        assert [t.sst_id for t in levels.level_files(1)] == [1, 2]

    def test_overlap_rejected(self):
        levels = LevelState(4)
        levels.add_to_level(1, table(1, 0, n=8))
        with pytest.raises(StorageError):
            levels.add_to_level(1, table(2, 4, n=8))

    def test_add_level0_api_guard(self):
        levels = LevelState(4)
        with pytest.raises(StorageError):
            levels.add_to_level(0, table(1, 0))

    def test_find_file(self):
        levels = LevelState(4)
        levels.add_to_level(1, table(1, 0))     # k00000..k00003
        levels.add_to_level(1, table(2, 100))   # k00100..k00103
        assert levels.find_file(1, "k00101").sst_id == 2
        assert levels.find_file(1, "k00050") is None
        assert levels.find_file(1, "a") is None

    def test_find_file_level0_rejected(self):
        with pytest.raises(StorageError):
            LevelState(4).find_file(0, "k")

    def test_overlapping_files(self):
        levels = LevelState(4)
        levels.add_to_level(1, table(1, 0))
        levels.add_to_level(1, table(2, 100))
        hits = levels.overlapping_files(1, "k00002", "k00101")
        assert [t.sst_id for t in hits] == [1, 2]
        assert levels.overlapping_files(1, "k00200", None) == []

    def test_remove(self):
        levels = LevelState(4)
        levels.add_to_level(1, table(1, 0))
        removed = levels.remove(1, 1)
        assert removed.sst_id == 1
        with pytest.raises(StorageError):
            levels.remove(1, 1)

    def test_entry_and_total_counts(self):
        levels = LevelState(4)
        levels.add_to_level(1, table(1, 0, n=4))
        levels.add_to_level(2, table(2, 100, n=8))
        assert levels.level_entry_count(1) == 4
        assert levels.total_entries() == 12

    def test_needs_two_levels(self):
        with pytest.raises(StorageError):
            LevelState(1)
