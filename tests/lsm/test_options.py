"""LSMOptions validation and level-capacity geometry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.lsm.options import BLOCK_SIZE, KEY_SIZE, VALUE_SIZE, LSMOptions


class TestDefaults:
    def test_paper_constants(self):
        assert KEY_SIZE == 24
        assert VALUE_SIZE == 1000
        assert BLOCK_SIZE == 4096

    def test_default_geometry_matches_paper(self):
        opts = LSMOptions()
        assert opts.entries_per_block == 4  # 4 KB / (24 + 1000) B
        assert opts.size_ratio == 10
        assert opts.level0_slowdown_writes_trigger == 4
        assert opts.level0_stop_writes_trigger == 8
        assert opts.bloom_bits_per_key == 10

    def test_blocks_per_sstable(self):
        opts = LSMOptions(entries_per_sstable=64, entries_per_block=4)
        assert opts.blocks_per_sstable == 16


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("entries_per_block", 0),
            ("entries_per_sstable", -1),
            ("memtable_entries", 0),
            ("size_ratio", 1),
            ("max_levels", 0),
            ("key_size", 0),
            ("bloom_bits_per_key", -1),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            LSMOptions(**{field: value})

    def test_sstable_must_be_block_multiple(self):
        with pytest.raises(ConfigError):
            LSMOptions(entries_per_sstable=65, entries_per_block=4)

    def test_stop_must_dominate_slowdown(self):
        with pytest.raises(ConfigError):
            LSMOptions(
                level0_slowdown_writes_trigger=8, level0_stop_writes_trigger=4
            )


class TestLevelCapacities:
    def test_growth_by_size_ratio(self):
        opts = LSMOptions(entries_per_sstable=64, memtable_entries=64)
        l1 = opts.level_capacity_entries(1)
        assert opts.level_capacity_entries(2) == l1 * 10
        assert opts.level_capacity_entries(3) == l1 * 100

    def test_level0_bounded_by_file_count(self):
        opts = LSMOptions(entries_per_sstable=64)
        assert opts.level_capacity_entries(0) == (
            opts.level0_file_num_compaction_trigger * 64
        )
