"""Compaction: triggers, merging semantics, invalidation events."""

from __future__ import annotations

from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.keys import key_of, value_of


def small_tree(**kw):
    opts = LSMOptions(memtable_entries=16, entries_per_sstable=32, **kw)
    return LSMTree(opts)


class TestTriggers:
    def test_l0_compaction_trigger(self):
        tree = small_tree()
        # Enough writes to exceed the L0 trigger several times over.
        for i in range(400):
            tree.put(key_of(i), value_of(i))
        assert tree.compactor.compactions_total > 0
        assert (
            tree.levels.level0_file_count
            < tree.options.level0_file_num_compaction_trigger
        )

    def test_deeper_levels_respect_capacity(self):
        tree = small_tree()
        for i in range(2000):
            tree.put(key_of(i % 500), value_of(i % 500, i))
        for level in range(1, tree.options.max_levels - 1):
            count = tree.levels.level_entry_count(level)
            # May transiently exceed by one file's worth; not more.
            assert count <= tree.options.level_capacity_entries(level) + \
                tree.options.entries_per_sstable


class TestMergeSemantics:
    def test_newest_version_survives(self):
        tree = small_tree()
        for round_ in range(5):
            for i in range(100):
                tree.put(key_of(i), value_of(i, round_))
        for i in range(0, 100, 11):
            assert tree.get(key_of(i)) == value_of(i, 4)

    def test_tombstones_removed_at_bottom(self):
        tree = small_tree()
        for i in range(100):
            tree.put(key_of(i), value_of(i))
        for i in range(50):
            tree.delete(key_of(i))
        # Churn enough to force full compaction cascades.
        for i in range(100, 400):
            tree.put(key_of(i), value_of(i))
        for i in range(0, 50, 7):
            assert tree.get(key_of(i)) is None
        for i in range(50, 100, 7):
            assert tree.get(key_of(i)) == value_of(i)

    def test_obsolete_files_deleted_from_disk(self):
        tree = small_tree()
        for i in range(500):
            tree.put(key_of(i), value_of(i))
        live = set(tree.disk.live_sst_ids())
        referenced = {t.sst_id for t in tree.levels.all_files()}
        assert live == referenced


class TestEvents:
    def test_listener_reports_invalidated_blocks(self):
        tree = small_tree()
        events = []
        tree.add_compaction_listener(events.append)
        for i in range(300):
            tree.put(key_of(i), value_of(i))
        assert events
        for event in events:
            assert event.entries_in > 0
            assert event.blocks_invalidated > 0
            assert event.input_sst_ids
            # Compaction preserves entries unless tombstones are dropped.
            assert event.entries_out <= event.entries_in

    def test_compaction_changes_sst_ids(self):
        tree = small_tree()
        events = []
        tree.add_compaction_listener(events.append)
        for i in range(300):
            tree.put(key_of(i), value_of(i))
        for event in events:
            assert not set(event.input_sst_ids) & set(event.output_sst_ids)
