"""Model-based property tests: the LSM tree vs a plain dict.

Whatever sequence of puts/deletes/flushes happens, point lookups and
scans must agree with the dict model — across memtable, L0 overlap,
compactions, and tombstones.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree

KEYS = [f"k{i:03d}" for i in range(40)]

op_strategy = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(KEYS), st.text(min_size=1, max_size=4)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS), st.none()),
    st.tuples(st.just("flush"), st.none(), st.none()),
)


def run_ops(tree, model, ops):
    for kind, key, value in ops:
        if kind == "put":
            tree.put(key, value)
            model[key] = value
        elif kind == "delete":
            tree.delete(key)
            model.pop(key, None)
        else:
            tree.flush()


@settings(max_examples=60, deadline=None)
@given(st.lists(op_strategy, max_size=120))
def test_point_lookups_match_dict_model(ops):
    tree = LSMTree(LSMOptions(memtable_entries=8, entries_per_sstable=16))
    model = {}
    run_ops(tree, model, ops)
    for key in KEYS:
        assert tree.get(key) == model.get(key)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(op_strategy, max_size=100),
    st.sampled_from(KEYS),
    st.integers(min_value=1, max_value=20),
)
def test_scans_match_dict_model(ops, start, length):
    tree = LSMTree(LSMOptions(memtable_entries=8, entries_per_sstable=16))
    model = {}
    run_ops(tree, model, ops)
    expected = sorted((k, v) for k, v in model.items() if k >= start)[:length]
    assert tree.scan(start, length) == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(op_strategy, min_size=30, max_size=150))
def test_structural_invariants_hold(ops):
    tree = LSMTree(LSMOptions(memtable_entries=8, entries_per_sstable=16))
    run_ops(tree, {}, ops)
    # Levels 1+ must hold non-overlapping, sorted files.
    for level in range(1, tree.options.max_levels):
        files = tree.levels.level_files(level)
        for left, right in zip(files, files[1:]):
            assert left.last_key < right.first_key
    # Every referenced file is live on disk and vice versa.
    referenced = {t.sst_id for t in tree.levels.all_files()}
    assert referenced == set(tree.disk.live_sst_ids())
    # Run accounting matches the level shape.
    assert tree.num_sorted_runs >= (1 if referenced else 0)
