"""Merging iterators: run priority, tombstones, lazy block reads."""

from __future__ import annotations

from repro.lsm.iterator import (
    memtable_source,
    merge_scan,
    sstable_source,
    level_source,
)
from repro.lsm.memtable import MemTable
from repro.lsm.sstable import SSTable


def table_of(sst_id, entries):
    return SSTable.from_entries(sst_id, entries, 4)


def direct_fetch_counting(table, counter):
    def fetch(handle):
        counter.append(handle)
        return table.block_at(handle.block_no)

    return fetch


class TestSources:
    def test_memtable_source(self):
        m = MemTable()
        m.put("b", "1")
        m.put("a", "2")
        out = list(memtable_source(m, "a", priority=0))
        assert out == [("a", 0, "2"), ("b", 0, "1")]

    def test_sstable_source_from_midpoint(self):
        t = table_of(1, [(f"k{i}", str(i)) for i in range(8)])
        reads = []
        out = list(sstable_source(t, "k5", 1, direct_fetch_counting(t, reads)))
        assert [k for k, _, _ in out] == ["k5", "k6", "k7"]
        assert len(reads) == 1  # only the second block touched

    def test_sstable_source_entirely_before_start_costs_nothing(self):
        t = table_of(1, [("a", "1"), ("b", "2")])
        reads = []
        out = list(sstable_source(t, "z", 1, direct_fetch_counting(t, reads)))
        assert out == [] and reads == []

    def test_level_source_skips_early_files(self):
        t1 = table_of(1, [("a", "1"), ("b", "2")])
        t2 = table_of(2, [("m", "3"), ("n", "4")])
        reads = []

        def fetch(handle):
            reads.append(handle)
            table = t1 if handle.sst_id == 1 else t2
            return table.block_at(handle.block_no)

        out = list(level_source([t1, t2], "m", 1, fetch))
        assert [k for k, _, _ in out] == ["m", "n"]
        assert all(h.sst_id == 2 for h in reads)


class TestMerge:
    def test_newest_wins_on_duplicates(self):
        new = iter([("a", 0, "new"), ("b", 0, "bn")])
        old = iter([("a", 1, "old"), ("c", 1, "co")])
        out = list(merge_scan([new, old]))
        assert out == [("a", "new"), ("b", "bn"), ("c", "co")]

    def test_tombstone_suppresses_key(self):
        new = iter([("a", 0, None)])
        old = iter([("a", 1, "stale"), ("b", 1, "keep")])
        assert list(merge_scan([new, old])) == [("b", "keep")]

    def test_old_tombstone_does_not_mask_new_value(self):
        new = iter([("a", 0, "live")])
        old = iter([("a", 1, None)])
        assert list(merge_scan([new, old])) == [("a", "live")]

    def test_three_way_merge_sorted(self):
        s1 = iter([("a", 0, "1"), ("d", 0, "4")])
        s2 = iter([("b", 1, "2")])
        s3 = iter([("c", 2, "3")])
        out = list(merge_scan([s1, s2, s3]))
        assert [k for k, _ in out] == ["a", "b", "c", "d"]

    def test_empty_sources(self):
        assert list(merge_scan([iter([]), iter([])])) == []
