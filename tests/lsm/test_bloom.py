"""Bloom filter: no false negatives, bounded false positives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.bloom import (
    GOLDEN_GAMMA,
    BloomFilter,
    fnv1a,
    fnv1a_batch_multi,
    optimal_num_hashes,
    theoretical_fpr,
)


class TestConstruction:
    def test_build_sizes_for_keys(self):
        bloom = BloomFilter.build([f"k{i}" for i in range(100)], bits_per_key=10)
        assert bloom.size_bytes >= 100 * 10 // 8

    def test_zero_bits_disables_filter(self):
        bloom = BloomFilter(100, bits_per_key=0)
        assert bloom.may_contain("anything")
        assert bloom.size_bytes == 0

    def test_num_hashes_optimal(self):
        assert optimal_num_hashes(10) == 7
        assert optimal_num_hashes(0) == 0
        assert optimal_num_hashes(1) == 1

    def test_theoretical_fpr_10_bits_is_small(self):
        assert theoretical_fpr(10) < 0.01
        assert theoretical_fpr(0) == 1.0


class TestMembership:
    def test_no_false_negatives(self):
        keys = [f"key{i:05d}" for i in range(500)]
        bloom = BloomFilter.build(keys, bits_per_key=10)
        assert all(k in bloom for k in keys)

    def test_false_positive_rate_near_theory(self):
        keys = [f"key{i:05d}" for i in range(2000)]
        bloom = BloomFilter.build(keys, bits_per_key=10, seed=3)
        absent = [f"absent{i:05d}" for i in range(5000)]
        fp = sum(1 for k in absent if k in bloom)
        measured = fp / len(absent)
        assert measured < 3 * max(theoretical_fpr(10), 1e-3)

    def test_different_seeds_differ(self):
        keys = [f"k{i}" for i in range(200)]
        b1 = BloomFilter.build(keys, bits_per_key=8, seed=1)
        b2 = BloomFilter.build(keys, bits_per_key=8, seed=2)
        probes = [f"q{i}" for i in range(2000)]
        r1 = [p in b1 for p in probes]
        r2 = [p in b2 for p in probes]
        assert r1 != r2  # collision patterns must not be shared


class TestHash:
    def test_fnv1a_deterministic(self):
        assert fnv1a(b"abc", 1) == fnv1a(b"abc", 1)

    def test_fnv1a_salt_changes_hash(self):
        assert fnv1a(b"abc", 1) != fnv1a(b"abc", 2)

    def test_fnv1a_fits_64_bits(self):
        assert 0 <= fnv1a(b"x" * 100, 7) < (1 << 64)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.text(min_size=1, max_size=30), min_size=1, max_size=50, unique=True))
def test_property_inserted_keys_always_found(keys):
    bloom = BloomFilter.build(keys, bits_per_key=10)
    assert all(bloom.may_contain(k) for k in keys)


class TestBatchHashing:
    def test_fnv1a_batch_multi_equals_scalar_grid(self):
        datas = [f"key-{i}".encode() for i in range(11)]
        salts = [0, 7, 0x9E3779B97F4A7C15]
        matrix = fnv1a_batch_multi(datas, salts).tolist()
        for j, salt in enumerate(salts):
            for i, data in enumerate(datas):
                assert matrix[j][i] == fnv1a(data, salt)

    def test_fnv1a_batch_multi_ragged_lengths(self):
        datas = [b"", b"a", b"abcdefghij" * 4, b"xy"]
        salts = [3, 4]
        matrix = fnv1a_batch_multi(datas, salts).tolist()
        for j, salt in enumerate(salts):
            assert matrix[j] == [fnv1a(d, salt) for d in datas]

    def test_fnv1a_batch_multi_empty(self):
        assert fnv1a_batch_multi([], [1]).shape == (1, 0)
        assert fnv1a_batch_multi([b"a"], []).shape == (0, 1)


class TestBatchProbing:
    def test_may_contain_batch_equals_scalar(self):
        keys = [f"k{i}" for i in range(60)]
        bloom = BloomFilter.build(keys[:30], bits_per_key=10, seed=5)
        probes = keys + [f"other-{i}" for i in range(40)]
        assert bloom.may_contain_batch(probes) == [
            bloom.may_contain(k) for k in probes
        ]

    def test_may_contain_batch_small_batch_fallback(self):
        bloom = BloomFilter.build([f"k{i}" for i in range(20)], seed=2)
        probes = ["k1", "missing", "k3"]
        assert bloom.may_contain_batch(probes) == [
            bloom.may_contain(k) for k in probes
        ]

    def test_may_contain_hashed_equals_may_contain(self):
        bloom = BloomFilter.build([f"k{i}" for i in range(25)], seed=9)
        seed = bloom.seed
        for key in [f"k{i}" for i in range(25)] + ["absent-a", "absent-b"]:
            data = key.encode("utf-8")
            h1 = fnv1a(data, seed)
            h2 = fnv1a(data, seed ^ GOLDEN_GAMMA)
            assert bloom.may_contain_hashed(h1, h2) == bloom.may_contain(key)

    def test_vectorized_build_is_bit_identical_to_scalar_adds(self):
        keys = [f"key-{i:04d}" for i in range(100)]  # > scalar crossover
        built = BloomFilter.build(keys, bits_per_key=10, seed=4)
        manual = BloomFilter(len(keys), bits_per_key=10, seed=4)
        for key in keys:
            manual.add(key)
        assert built._bits == manual._bits


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.text(min_size=0, max_size=24), min_size=8, max_size=40),
    st.integers(min_value=0, max_value=2**32),
)
def test_property_batch_probe_equals_scalar(keys, seed):
    """may_contain_batch matches the scalar probe for arbitrary keys."""
    bloom = BloomFilter.build(keys[: len(keys) // 2], bits_per_key=8, seed=seed)
    assert bloom.may_contain_batch(keys) == [bloom.may_contain(k) for k in keys]
