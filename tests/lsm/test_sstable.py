"""SSTables: packing, index search, bloom pruning, overlap queries."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.lsm.sstable import SSTable


def build_table(n=16, sst_id=1, entries_per_block=4, start=0, step=1):
    entries = [(f"k{start + i * step:05d}", f"v{i}") for i in range(n)]
    return SSTable.from_entries(sst_id, entries, entries_per_block)


class TestConstruction:
    def test_block_packing(self):
        table = build_table(n=10, entries_per_block=4)
        assert table.num_blocks == 3  # 4 + 4 + 2
        assert table.num_entries == 10

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            SSTable.from_entries(1, [], 4)

    def test_key_span(self):
        table = build_table(n=8)
        assert table.first_key == "k00000"
        assert table.last_key == "k00007"


class TestLookup:
    def test_find_block_no_locates_key(self):
        table = build_table(n=12, entries_per_block=4)
        # key k00005 lives in block 1 (entries 4..7)
        assert table.find_block_no("k00005") == 1

    def test_find_block_no_outside_range(self):
        table = build_table(n=8)
        assert table.find_block_no("a") is None
        assert table.find_block_no("z") is None

    def test_bloom_rejects_absent(self):
        table = build_table(n=64)
        present = sum(table.may_contain(f"k{i:05d}") for i in range(64))
        assert present == 64
        absent_hits = sum(table.may_contain(f"x{i:05d}") for i in range(500))
        assert absent_hits < 30  # ~1% FPR expected at 10 bits/key

    def test_block_at_bounds(self):
        table = build_table(n=8, entries_per_block=4)
        assert table.block_at(0).first_key == "k00000"
        with pytest.raises(StorageError):
            table.block_at(5)


class TestRangeMetadata:
    def test_overlaps(self):
        table = build_table(n=8)  # k00000..k00007
        assert table.overlaps("k00003", "k00005")
        assert table.overlaps("k00007", None)
        assert not table.overlaps("k00008", None)
        assert not table.overlaps("a", "k00000")  # end-exclusive

    def test_first_block_no_for_scan(self):
        table = build_table(n=12, entries_per_block=4)
        assert table.first_block_no_for("k00006") == 1
        assert table.first_block_no_for("a") == 0
        assert table.first_block_no_for("z") is None

    def test_all_entries_roundtrip(self):
        table = build_table(n=10)
        assert [k for k, _ in table.all_entries()] == [f"k{i:05d}" for i in range(10)]

    def test_handles_enumerate_blocks(self):
        table = build_table(n=10, entries_per_block=4, sst_id=9)
        handles = table.handles()
        assert [h.block_no for h in handles] == [0, 1, 2]
        assert all(h.sst_id == 9 for h in handles)
