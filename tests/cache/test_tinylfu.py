"""TinyLFU-gated eviction policy."""

from __future__ import annotations

import pytest

from repro.cache.base import BudgetedCache
from repro.cache.sketch import CountMinSketch
from repro.cache.tinylfu import TinyLFUPolicy
from repro.errors import CacheError


def cache_with(capacity=4, **policy_kw):
    policy = TinyLFUPolicy(seed=1, **policy_kw)
    return BudgetedCache(capacity, policy, lambda k, v: 1), policy


class TestDuel:
    def test_cold_candidate_loses_to_hot_victim(self):
        cache, policy = cache_with(capacity=2)
        cache.put("hot", "v")
        for _ in range(5):
            cache.get("hot")
        cache.put("warm", "v")
        cache.get("warm")
        # A one-shot cold key must not displace either resident.
        cache.put("cold", "v")
        assert "hot" in cache and "warm" in cache
        assert "cold" not in cache
        assert policy.duels_won_by_victim >= 1

    def test_hot_candidate_beats_cold_victim(self):
        cache, policy = cache_with(capacity=2)
        cache.put("a", "v")
        cache.put("b", "v")
        cache.get("b")
        # Pre-warm the candidate's frequency through misses counted by
        # a shared sketch path: insert it, evict it, reinsert hot.
        for _ in range(4):
            policy.sketch.increment("returning")
        cache.put("returning", "v")
        assert "returning" in cache
        assert "a" not in cache  # the LRU, colder than the candidate
        assert policy.duels_won_by_candidate >= 1

    def test_empty_raises(self):
        with pytest.raises(CacheError):
            TinyLFUPolicy(seed=1).select_victim()


class TestScanResistance:
    def test_one_shot_stream_cannot_flush_hot_set(self):
        """The TinyLFU claim the paper builds on: under a cold stream,
        frequency gating preserves the hot working set where pure LRU
        loses it entirely."""
        from repro.cache.lru import LRUPolicy

        def run(policy):
            cache = BudgetedCache(8, policy, lambda k, v: 1)
            hot = [f"h{i}" for i in range(4)]
            hot_hits = 0
            for round_ in range(100):
                for key in hot:
                    if cache.get(key) is None:
                        cache.put(key, "v")
                    else:
                        hot_hits += 1
                for j in range(6):  # cold one-shot stream
                    cache.put(f"c{round_}_{j}", "v")
            return hot_hits

        tinylfu_hits = run(TinyLFUPolicy(seed=1))
        lru_hits = run(LRUPolicy())
        assert tinylfu_hits > lru_hits * 2

    def test_budget_respected_under_churn(self):
        cache, _ = cache_with(capacity=4)
        for i in range(200):
            cache.put(f"k{i % 40}", "v")
            cache.get(f"k{(i * 3) % 40}")
        assert len(cache) <= 4


class TestBookkeeping:
    def test_shared_sketch_accepted(self):
        sketch = CountMinSketch(width=128, depth=2, seed=1)
        policy = TinyLFUPolicy(sketch=sketch)
        assert policy.sketch is sketch

    def test_invalidation_clears_candidate(self):
        cache, policy = cache_with(capacity=2)
        cache.put("a", "v")
        cache.remove("a")
        assert policy._candidate is None
        cache.put("b", "v")
        cache.put("c", "v")
        cache.put("d", "v")  # forces a duel with no stale candidate
        assert len(cache) <= 2

    def test_contains_and_len(self):
        cache, policy = cache_with(capacity=3)
        cache.put("x", "v")
        assert "x" in policy and len(policy) == 1


class TestYCSBWorkloads:
    def test_constructors(self):
        from repro.workloads.generator import ycsb_a, ycsb_b, ycsb_c, ycsb_e, ycsb_f

        assert ycsb_a(100).write_ratio == 0.5
        assert ycsb_b(100).get_ratio == 0.95
        assert ycsb_c(100).get_ratio == 1.0
        assert ycsb_e(100).short_scan_ratio == 0.95
        assert ycsb_f(100).write_ratio == 0.5
