"""Skip list: ordering, neighbours, removal — unit + model-based."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.skiplist import SkipList


class TestBasics:
    def test_insert_get(self):
        sl = SkipList(seed=1)
        assert sl.insert("b", "2") is True
        assert sl.get("b") == (True, "2")
        assert sl.get("a") == (False, None)

    def test_overwrite_returns_false(self):
        sl = SkipList(seed=1)
        sl.insert("a", "1")
        assert sl.insert("a", "2") is False
        assert sl.get("a") == (True, "2")
        assert len(sl) == 1

    def test_remove(self):
        sl = SkipList(seed=1)
        sl.insert("a", "1")
        assert sl.remove("a") is True
        assert sl.remove("a") is False
        assert len(sl) == 0

    def test_contains(self):
        sl = SkipList(seed=1)
        sl.insert("x", "1")
        assert "x" in sl and "y" not in sl


class TestOrderedQueries:
    def _loaded(self):
        sl = SkipList(seed=2)
        for k in ["d", "a", "c", "e", "b"]:
            sl.insert(k, k.upper())
        return sl

    def test_items_sorted(self):
        assert [k for k, _ in self._loaded().items()] == list("abcde")

    def test_items_from(self):
        assert [k for k, _ in self._loaded().items_from("c")] == list("cde")

    def test_items_from_between_keys(self):
        sl = SkipList(seed=2)
        sl.insert("a", "1")
        sl.insert("c", "2")
        assert [k for k, _ in sl.items_from("b")] == ["c"]

    def test_predecessor_successor(self):
        sl = self._loaded()
        assert sl.predecessor("c") == "b"
        assert sl.successor("c") == "d"
        assert sl.predecessor("a") is None
        assert sl.successor("e") is None

    def test_predecessor_successor_for_absent_key(self):
        sl = SkipList(seed=2)
        sl.insert("a", "1")
        sl.insert("c", "2")
        assert sl.predecessor("b") == "a"
        assert sl.successor("b") == "c"

    def test_first_key(self):
        assert self._loaded().first_key() == "a"
        assert SkipList().first_key() is None


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove"]),
            st.text(alphabet="abcdefgh", min_size=1, max_size=3),
        ),
        max_size=80,
    )
)
def test_property_matches_sorted_dict(ops):
    sl = SkipList(seed=5)
    model = {}
    for kind, key in ops:
        if kind == "insert":
            sl.insert(key, key + "!")
            model[key] = key + "!"
        else:
            assert sl.remove(key) == (key in model)
            model.pop(key, None)
    assert list(sl.items()) == sorted(model.items())
    assert len(sl) == len(model)
    for key in model:
        keys = sorted(model)
        idx = keys.index(key)
        assert sl.predecessor(key) == (keys[idx - 1] if idx else None)
        assert sl.successor(key) == (keys[idx + 1] if idx + 1 < len(keys) else None)
