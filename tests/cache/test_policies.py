"""Eviction policies: LRU, LFU, CLOCK, ARC behavioural contracts."""

from __future__ import annotations

import pytest

from repro.cache.arc import ARCPolicy
from repro.cache.base import BudgetedCache
from repro.cache.clock import ClockPolicy
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy
from repro.errors import CacheError


class TestLRU:
    def test_evicts_least_recent(self):
        p = LRUPolicy()
        for k in "abc":
            p.record_insert(k)
        p.record_access("a")
        assert p.select_victim() == "b"

    def test_insert_is_most_recent(self):
        p = LRUPolicy()
        p.record_insert("a")
        p.record_insert("b")
        assert p.select_victim() == "a"

    def test_empty_raises(self):
        with pytest.raises(CacheError):
            LRUPolicy().select_victim()

    def test_remove_and_evict_forget(self):
        p = LRUPolicy()
        p.record_insert("a")
        p.record_evict("a")
        assert "a" not in p and len(p) == 0


class TestLFU:
    def test_evicts_least_frequent(self):
        p = LFUPolicy()
        for k in "ab":
            p.record_insert(k)
        p.record_access("a")
        p.record_access("a")
        assert p.select_victim() == "b"

    def test_tie_broken_by_lru(self):
        p = LFUPolicy()
        p.record_insert("a")
        p.record_insert("b")
        assert p.select_victim() == "a"  # same freq, a is older

    def test_frequency_tracking(self):
        p = LFUPolicy()
        p.record_insert("a")
        p.record_access("a")
        assert p.frequency("a") == 2
        assert p.frequency("zz") == 0

    def test_min_freq_recovers_after_drop(self):
        p = LFUPolicy()
        p.record_insert("a")
        p.record_access("a")  # a:2
        p.record_insert("b")  # b:1
        p.record_evict("b")
        assert p.select_victim() == "a"

    def test_access_unknown_key_ignored(self):
        p = LFUPolicy()
        p.record_access("ghost")
        assert len(p) == 0


class TestClock:
    def test_second_chance(self):
        p = ClockPolicy()
        for k in "abc":
            p.record_insert(k)
        p.record_access("a")  # a gets a second chance
        assert p.select_victim() == "b"

    def test_all_referenced_eventually_yields(self):
        p = ClockPolicy()
        for k in "ab":
            p.record_insert(k)
        p.record_access("a")
        p.record_access("b")
        victim = p.select_victim()
        assert victim in "ab"

    def test_empty_raises(self):
        with pytest.raises(CacheError):
            ClockPolicy().select_victim()


class TestARC:
    def test_one_hit_wonders_evicted_first(self):
        p = ARCPolicy(capacity_hint=4)
        for k in "abcd":
            p.record_insert(k)
        p.record_access("a")  # promotes a to T2
        assert p.select_victim() == "b"  # T1's LRU

    def test_ghost_hit_reinserts_to_t2(self):
        p = ARCPolicy(capacity_hint=4)
        p.record_insert("a")
        p.record_evict("a")  # a -> B1 ghost
        p.record_insert("a")  # ghost hit: straight to T2
        p.record_insert("b")  # fresh: T1
        assert "a" in p._t2 and "b" in p._t1

    def test_p_adapts_on_ghost_hits(self):
        p = ARCPolicy(capacity_hint=8)
        p.record_insert("a")
        p.record_evict("a")
        before = p.p
        p.record_insert("a")  # B1 hit should raise p
        assert p.p > before

    def test_remove_erases_ghosts_too(self):
        p = ARCPolicy(capacity_hint=4)
        p.record_insert("a")
        p.record_evict("a")
        p.record_remove("a")
        before = p.p
        p.record_insert("a")  # no ghost left: p unchanged
        assert p.p == before

    def test_capacity_hint_validated(self):
        with pytest.raises(CacheError):
            ARCPolicy(capacity_hint=0)


@pytest.mark.parametrize(
    "policy_factory",
    [LRUPolicy, LFUPolicy, ClockPolicy, lambda: ARCPolicy(capacity_hint=8)],
    ids=["lru", "lfu", "clock", "arc"],
)
def test_policy_contract_under_budgeted_cache(policy_factory):
    """Any policy must keep a BudgetedCache within budget and consistent."""
    cache = BudgetedCache(8, policy_factory(), lambda k, v: 1)
    for i in range(50):
        cache.put(i, str(i))
        cache.get(i % 7)
    assert len(cache) <= 8
    assert cache.used_bytes == len(cache)
    assert cache.stats.evictions == cache.stats.insertions - len(cache)
