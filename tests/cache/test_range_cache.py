"""Range Cache: complete-interval semantics, eviction splits, coherence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUPolicy
from repro.cache.range_cache import RangeCache
from repro.errors import CacheError


def entries(lo, hi, step=1):
    return [(f"k{i:04d}", f"v{i}") for i in range(lo, hi, step)]


def cache_of(budget_entries=16):
    return RangeCache(budget_entries * 100, entry_charge=100, seed=1)


class TestPointPath:
    def test_point_hit_after_point_insert(self):
        rc = cache_of()
        rc.insert_point("a", "1")
        assert rc.get_point("a") == "1"
        assert rc.point_hits == 1

    def test_point_miss(self):
        rc = cache_of()
        assert rc.get_point("nope") is None
        assert rc.stats.misses == 1

    def test_point_hit_inside_scan_result(self):
        rc = cache_of()
        rc.insert_range("k0000", entries(0, 5))
        assert rc.get_point("k0003") == "v3"


class TestRangePath:
    def test_full_hit(self):
        rc = cache_of()
        rc.insert_range("k0000", entries(0, 8))
        assert rc.get_range("k0002", 4) == entries(2, 6)
        assert rc.range_hits == 1

    def test_hit_from_scan_start_key(self):
        rc = cache_of()
        rc.insert_range("k0000", entries(0, 8))
        assert rc.get_range("k0000", 8) == entries(0, 8)

    def test_miss_beyond_interval_end(self):
        rc = cache_of()
        rc.insert_range("k0000", entries(0, 4))
        assert rc.get_range("k0002", 4) is None

    def test_miss_when_start_not_covered(self):
        rc = cache_of()
        rc.insert_range("k0005", entries(5, 10))
        assert rc.get_range("k0000", 2) is None

    def test_point_inserts_do_not_fake_completeness(self):
        """Adjacent point entries must not satisfy a range scan: the
        cache cannot know no DB key lies between them."""
        rc = cache_of()
        rc.insert_point("k0001", "v1")
        rc.insert_point("k0002", "v2")
        assert rc.get_range("k0001", 2) is None

    def test_overlapping_scan_results_merge(self):
        rc = cache_of(budget_entries=32)
        rc.insert_range("k0000", entries(0, 6))
        rc.insert_range("k0004", entries(4, 12))
        assert rc.get_range("k0000", 12) == entries(0, 12)
        assert rc.num_complete_intervals == 1

    def test_partial_admission_limits_footprint(self):
        rc = cache_of(budget_entries=32)
        admitted = rc.insert_range("k0000", entries(0, 16), admit_count=4)
        assert admitted == 4
        assert len(rc) == 4
        assert rc.get_range("k0000", 4) == entries(0, 4)
        assert rc.get_range("k0000", 8) is None

    def test_zero_admission_rejected(self):
        rc = cache_of()
        assert rc.insert_range("k0000", entries(0, 4), admit_count=0) == 0
        assert rc.stats.rejections == 1


class TestEviction:
    def test_eviction_splits_interval(self):
        rc = RangeCache(5 * 100, entry_charge=100, seed=1)
        rc.insert_range("k0000", entries(0, 5))
        # Touch later keys so k0000 becomes LRU, then overflow by one.
        rc.get_point("k0001")
        rc.get_point("k0002")
        rc.insert_point("k0099", "x")  # forces eviction of k0000
        assert len(rc) == 5
        assert rc.get_range("k0000", 2) is None  # left edge lost
        hit = rc.get_range("k0001", 2)
        assert hit is not None  # the surviving middle is still complete

    def test_budget_always_respected(self):
        rc = RangeCache(8 * 100, entry_charge=100, seed=1)
        for i in range(0, 50, 5):
            rc.insert_range(f"k{i:04d}", entries(i, i + 5))
        assert rc.used_bytes <= rc.budget_bytes
        assert len(rc) <= 8

    def test_oversized_entry_rejected(self):
        rc = RangeCache(50, entry_charge=100)
        assert rc.insert_point("a", "1") is False
        assert rc.stats.rejections == 1

    def test_resize_down(self):
        rc = cache_of(budget_entries=8)
        rc.insert_range("k0000", entries(0, 8))
        rc.resize(3 * 100)
        assert len(rc) == 3
        assert rc.used_bytes <= rc.budget_bytes

    def test_resize_to_zero_empties(self):
        rc = cache_of()
        rc.insert_range("k0000", entries(0, 4))
        rc.resize(0)
        assert len(rc) == 0


class TestWriteCoherence:
    def test_overwrite_updates_value(self):
        rc = cache_of()
        rc.insert_point("a", "old")
        rc.on_write("a", "new")
        assert rc.get_point("a") == "new"

    def test_new_key_inside_interval_inserted(self):
        rc = cache_of()
        rc.insert_range("k0000", [("k0000", "0"), ("k0002", "2")])
        rc.on_write("k0001", "1")
        assert rc.get_range("k0000", 3) == [
            ("k0000", "0"),
            ("k0001", "1"),
            ("k0002", "2"),
        ]

    def test_new_key_outside_intervals_ignored(self):
        rc = cache_of()
        rc.insert_range("k0000", entries(0, 2))
        rc.on_write("k9999", "x")
        assert not rc.contains("k9999")

    def test_delete_keeps_interval_complete(self):
        rc = cache_of()
        rc.insert_range("k0000", entries(0, 4))
        rc.on_delete("k0001")
        result = rc.get_range("k0000", 3)
        assert result == [("k0000", "v0"), ("k0002", "v2"), ("k0003", "v3")]

    def test_delete_of_uncached_key_is_noop(self):
        rc = cache_of()
        rc.on_delete("ghost")
        assert rc.stats.invalidations == 0


class TestMisc:
    def test_validation(self):
        with pytest.raises(CacheError):
            RangeCache(-1)
        with pytest.raises(CacheError):
            RangeCache(100, entry_charge=0)

    def test_clear(self):
        rc = cache_of()
        rc.insert_range("k0000", entries(0, 4))
        rc.clear()
        assert len(rc) == 0 and rc.num_complete_intervals == 0
        assert rc.used_bytes == 0

    def test_custom_policy_accepted(self):
        rc = RangeCache(400, entry_charge=100, policy=LRUPolicy())
        rc.insert_point("a", "1")
        assert rc.get_point("a") == "1"


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=1, max_value=10),
        ),
        min_size=1,
        max_size=25,
    ),
    st.integers(min_value=4, max_value=30),
)
def test_property_range_hits_are_correct(scans, budget_entries):
    """Whatever was admitted/evicted, any range *hit* must equal the
    true database contents for that window (keys 0..60, all present)."""
    db = {f"k{i:04d}": f"v{i}" for i in range(60)}
    db_keys = sorted(db)
    rc = RangeCache(budget_entries * 100, entry_charge=100, seed=2)
    for start, length in scans:
        start_key = f"k{start:04d}"
        expected = [(k, db[k]) for k in db_keys if k >= start_key][:length]
        hit = rc.get_range(start_key, length)
        if hit is not None:
            assert hit == expected  # correctness of every hit
        elif expected:
            rc.insert_range(start_key, expected)
        assert rc.used_bytes <= rc.budget_bytes
