"""LeCaR and Cacheus: regret learning, expert structure, adaptivity."""

from __future__ import annotations

import pytest

from repro.cache.base import BudgetedCache
from repro.cache.cacheus import CacheusPolicy, CRLFUPolicy, SRLRUPolicy
from repro.cache.lecar import LeCaRPolicy
from repro.errors import CacheError


class TestLeCaR:
    def test_weights_start_balanced(self):
        assert LeCaRPolicy(seed=1).weights == (0.5, 0.5)

    def test_ghost_hit_penalizes_culprit(self):
        p = LeCaRPolicy(history_size=8, seed=1)
        p.record_insert("a")
        victim = p.select_victim()
        p.record_evict(victim)
        w_before = p.weights
        p.record_insert(victim)  # the evicted key returns: regret
        w_after = p.weights
        assert w_after != w_before
        assert abs(sum(w_after) - 1.0) < 1e-9

    def test_invalidation_is_not_a_mistake(self):
        p = LeCaRPolicy(history_size=8, seed=1)
        p.record_insert("a")
        p.record_remove("a")
        w_before = p.weights
        p.record_insert("a")  # not in any ghost list
        assert p.weights == w_before

    def test_history_bounded(self):
        p = LeCaRPolicy(history_size=4, seed=1)
        for i in range(20):
            key = f"k{i}"
            p.record_insert(key)
            victim = p.select_victim()
            p.record_evict(victim)
        assert len(p._history) <= 4

    def test_validates_history_size(self):
        with pytest.raises(CacheError):
            LeCaRPolicy(history_size=0)

    def test_converges_toward_lfu_under_frequency_skew(self):
        """When LRU keeps evicting hot keys, LFU's weight should rise.

        Each round warms two hot keys (building LFU frequency) and then
        streams six one-shot cold keys through a 4-slot cache.  The LRU
        arm evicts the hot keys during the cold stream; when they return
        the regret hit on LRU's ghost list shifts weight to LFU, whose
        arm sacrifices the never-returning colds instead.
        """
        p = LeCaRPolicy(history_size=64, learning_rate=0.45, seed=3)
        cache = BudgetedCache(4, p, lambda k, v: 1)
        cold = 0
        for _ in range(100):
            for _ in range(5):
                for h in ("h1", "h2"):
                    if cache.get(h) is None:
                        cache.put(h, "v")
            for _ in range(6):
                cache.put(f"c{cold}", "v")
                cold += 1
        w_lru, w_lfu = p.weights
        assert w_lfu > 0.9


class TestSRLRU:
    def test_one_hit_keys_evicted_before_reused(self):
        p = SRLRUPolicy()
        p.record_insert("reused")
        p.record_access("reused")  # promoted to safe
        p.record_insert("scan1")
        p.record_insert("scan2")
        assert p.select_victim() in ("scan1", "scan2")

    def test_history_hint_inserts_safe(self):
        p = SRLRUPolicy()
        p.record_insert("a", safe=True)
        p.record_insert("b")
        assert p.select_victim() == "b"

    def test_empty_raises(self):
        with pytest.raises(CacheError):
            SRLRUPolicy().select_victim()

    def test_rebalance_keeps_safe_at_most_half(self):
        p = SRLRUPolicy()
        for i in range(10):
            key = f"k{i}"
            p.record_insert(key)
            p.record_access(key)
        assert len(p._s) <= len(p) // 2 + 1


class TestCRLFU:
    def test_evicts_most_recent_of_cold_bucket(self):
        p = CRLFUPolicy()
        p.record_insert("old_cold")
        p.record_insert("new_cold")
        p.record_insert("hot")
        p.record_access("hot")
        assert p.select_victim() == "new_cold"

    def test_empty_raises(self):
        with pytest.raises(CacheError):
            CRLFUPolicy().select_victim()


class TestCacheus:
    def test_weights_normalised(self):
        p = CacheusPolicy(history_size=8, seed=1)
        p.record_insert("a")
        victim = p.select_victim()
        p.record_evict(victim)
        p.record_insert(victim)
        assert abs(sum(p.weights) - 1.0) < 1e-9

    def test_learning_rate_adapts(self):
        p = CacheusPolicy(history_size=16, seed=1)
        initial_lr = p.learning_rate
        cache = BudgetedCache(4, p, lambda k, v: 1)
        for i in range(200):
            cache.put(f"k{i % 40}", "v")
            cache.get(f"k{(i * 3) % 40}")
        assert p.learning_rate != initial_lr
        assert 0.001 <= p.learning_rate <= 1.0

    def test_returning_key_goes_to_safe_list(self):
        p = CacheusPolicy(history_size=8, seed=1)
        p.record_insert("a")
        p.select_victim()
        p.record_evict("a")
        p.record_insert("a")  # from ghost: safe
        p.record_insert("b")  # probationary
        assert p.select_victim() == "b"

    def test_contract_under_budgeted_cache(self):
        cache = BudgetedCache(8, CacheusPolicy(history_size=8, seed=2), lambda k, v: 1)
        for i in range(100):
            cache.put(i % 20, "v")
            cache.get((i * 7) % 20)
        assert len(cache) <= 8
