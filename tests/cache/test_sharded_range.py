"""Range-partitioned sharded Range Cache (concurrency architecture)."""

from __future__ import annotations

import threading

import pytest

from repro.cache.lecar import LeCaRPolicy
from repro.cache.sharded_range import ShardedRangeCache, even_boundaries
from repro.errors import CacheError


def entries(lo, hi):
    return [(f"k{i:04d}", f"v{i}") for i in range(lo, hi)]


def cache_of(budget_entries=32, boundaries=("k0100", "k0200")):
    return ShardedRangeCache(
        budget_entries * 100, boundaries, entry_charge=100, seed=1
    )


class TestRouting:
    def test_shard_index(self):
        c = cache_of()
        assert c.shard_index("k0000") == 0
        assert c.shard_index("k0100") == 1  # boundary belongs to the right
        assert c.shard_index("k0150") == 1
        assert c.shard_index("k0999") == 2
        assert c.num_shards == 3

    def test_points_routed_to_owner(self):
        c = cache_of()
        c.insert_point("k0050", "a")
        c.insert_point("k0150", "b")
        assert c.get_point("k0050") == "a"
        assert c.get_point("k0150") == "b"
        assert len(c.shards()[0]) == 1
        assert len(c.shards()[1]) == 1

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(CacheError):
            ShardedRangeCache(1000, ["b", "a"])
        with pytest.raises(CacheError):
            ShardedRangeCache(1000, ["a", "a"])

    def test_even_boundaries_helper(self):
        bounds = even_boundaries(100, 4, key_of=lambda i: f"k{i:04d}")
        assert bounds == ["k0025", "k0050", "k0075"]
        with pytest.raises(CacheError):
            even_boundaries(100, 0, key_of=lambda i: str(i))


class TestRangePath:
    def test_in_shard_scan_hits(self):
        c = cache_of()
        c.insert_range("k0010", entries(10, 20))
        assert c.get_range("k0012", 5) == entries(12, 17)

    def test_cross_boundary_scan_is_a_miss(self):
        c = cache_of(boundaries=("k0015",))
        # Admission truncates at the boundary...
        admitted = c.insert_range("k0010", entries(10, 20))
        assert admitted == 5  # k0010..k0014 only
        # ...so a scan crossing it cannot be served.
        assert c.get_range("k0010", 8) is None
        # But the in-shard prefix is.
        assert c.get_range("k0010", 4) == entries(10, 14)

    def test_cross_shard_hit_rejected_and_counted(self):
        c = cache_of(boundaries=("k0015",))
        c.insert_range("k0010", entries(10, 15))  # fills shard 0 fully
        c.insert_range("k0015", entries(15, 20))  # shard 1
        # Shard 0's interval covers k0010..k0014; a 5-length scan fits.
        assert c.get_range("k0010", 5) == entries(10, 15)

    def test_budget_split_and_totals(self):
        c = ShardedRangeCache(1000, ["m"], entry_charge=100)
        assert c.budget_bytes == 1000
        shards = c.shards()
        assert shards[0].budget_bytes + shards[1].budget_bytes == 1000

    def test_resize(self):
        c = cache_of(budget_entries=30)
        c.insert_range("k0010", entries(10, 30))
        c.resize(5 * 100)
        assert c.used_bytes <= c.budget_bytes


class TestCoherence:
    def test_on_write_and_delete_routed(self):
        c = cache_of()
        c.insert_range("k0010", entries(10, 13))
        c.on_write("k0011", "fresh")
        assert c.get_point("k0011") == "fresh"
        c.on_delete("k0011")
        assert c.get_range("k0010", 2) == [("k0010", "v10"), ("k0012", "v12")]

    def test_policy_factory_applied_per_shard(self):
        c = ShardedRangeCache(
            1000,
            ["m"],
            entry_charge=100,
            policy_factory=lambda: LeCaRPolicy(history_size=8, seed=1),
        )
        for shard in c.shards():
            assert isinstance(shard._policy, LeCaRPolicy)

    def test_stats_aggregate(self):
        c = cache_of()
        c.insert_point("k0000", "x")
        c.get_point("k0000")
        c.get_point("k0250")
        stats = c.stats
        assert stats.hits == 1 and stats.misses == 1


class TestConcurrency:
    def test_parallel_clients_on_disjoint_shards(self):
        c = ShardedRangeCache(
            64 * 100,
            even_boundaries(400, 4, key_of=lambda i: f"k{i:04d}"),
            entry_charge=100,
            seed=1,
        )
        errors = []

        def client(base):
            try:
                for round_ in range(200):
                    key = f"k{base + round_ % 50:04d}"
                    c.insert_point(key, "v")
                    got = c.get_point(key)
                    if got != "v":
                        errors.append((base, key, got))
            except Exception as exc:  # noqa: BLE001
                errors.append((base, repr(exc)))

        threads = [threading.Thread(target=client, args=(b,)) for b in (0, 100, 200, 300)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert c.used_bytes <= c.budget_bytes
