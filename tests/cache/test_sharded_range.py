"""Range-partitioned sharded Range Cache (concurrency architecture)."""

from __future__ import annotations

import threading

import pytest

from repro.cache.lecar import LeCaRPolicy
from repro.cache.sharded_range import ShardedRangeCache, even_boundaries
from repro.errors import CacheError


def entries(lo, hi):
    return [(f"k{i:04d}", f"v{i}") for i in range(lo, hi)]


def cache_of(budget_entries=32, boundaries=("k0100", "k0200")):
    return ShardedRangeCache(
        budget_entries * 100, boundaries, entry_charge=100, seed=1
    )


class TestRouting:
    def test_shard_index(self):
        c = cache_of()
        assert c.shard_index("k0000") == 0
        assert c.shard_index("k0100") == 1  # boundary belongs to the right
        assert c.shard_index("k0150") == 1
        assert c.shard_index("k0999") == 2
        assert c.num_shards == 3

    def test_points_routed_to_owner(self):
        c = cache_of()
        c.insert_point("k0050", "a")
        c.insert_point("k0150", "b")
        assert c.get_point("k0050") == "a"
        assert c.get_point("k0150") == "b"
        assert len(c.shards()[0]) == 1
        assert len(c.shards()[1]) == 1

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(CacheError):
            ShardedRangeCache(1000, ["b", "a"])
        with pytest.raises(CacheError):
            ShardedRangeCache(1000, ["a", "a"])

    def test_even_boundaries_helper(self):
        bounds = even_boundaries(100, 4, key_of=lambda i: f"k{i:04d}")
        assert bounds == ["k0025", "k0050", "k0075"]
        with pytest.raises(CacheError):
            even_boundaries(100, 0, key_of=lambda i: str(i))


class TestBoundaries:
    """Exact edge behaviour at the first/last shard and on split keys."""

    def test_first_and_last_shard_edges(self):
        c = cache_of(boundaries=("k0100", "k0200", "k0300"))
        # Smallest representable keys land in shard 0 ...
        assert c.shard_index("") == 0
        assert c.shard_index("k0000") == 0
        # ... and anything past the last boundary in the final shard.
        assert c.shard_index("k0300") == c.num_shards - 1
        assert c.shard_index("zzzz") == c.num_shards - 1

    def test_key_exactly_on_boundary_owned_by_right_shard(self):
        c = cache_of(boundaries=("k0100", "k0200"))
        c.insert_point("k0100", "edge")
        assert len(c.shards()[1]) == 1
        assert len(c.shards()[0]) == 0
        assert c.get_point("k0100") == "edge"
        # A scan starting exactly on the boundary stays inside shard 1.
        c.insert_range("k0100", entries(100, 110))
        assert c.get_range("k0100", 5) == entries(100, 105)

    def test_upper_bound_per_shard(self):
        c = cache_of(boundaries=("k0100", "k0200"))
        assert c._upper_bound(0) == "k0100"
        assert c._upper_bound(1) == "k0200"
        assert c._upper_bound(2) is None  # last shard is unbounded above

    def test_single_shard_degenerates_to_plain_range_cache(self):
        from repro.cache.range_cache import RangeCache

        sharded = ShardedRangeCache(32 * 100, [], entry_charge=100, seed=1)
        oracle = RangeCache(32 * 100, entry_charge=100, seed=1)
        for cache in (sharded, oracle):
            cache.insert_range("k0000", entries(0, 20))
        assert sharded.num_shards == 1
        for start, length in (("k0000", 5), ("k0010", 10), ("k0019", 1)):
            assert sharded.get_range(start, length) == oracle.get_range(
                start, length
            )

    def test_within_shard_scans_match_unsharded_oracle(self):
        from repro.cache.range_cache import RangeCache

        sharded = cache_of(budget_entries=256, boundaries=("k0100", "k0200"))
        oracle = RangeCache(256 * 100, entry_charge=100, seed=1)
        # Populate each shard's slice separately so inserts never cross a
        # boundary (the sharded cache rejects those by design).
        # Slices stay within each shard's budget (256/3 entries per shard)
        # and never cross a boundary (the sharded cache rejects those by
        # design).
        for lo, hi in ((60, 100), (100, 150), (200, 250)):
            sharded.insert_range(f"k{lo:04d}", entries(lo, hi))
        # The oracle sees the same data but as contiguous intervals, so it
        # can also serve the boundary-straddling scan the shards cannot.
        for lo, hi in ((60, 150), (200, 250)):
            oracle.insert_range(f"k{lo:04d}", entries(lo, hi))
        probes = [("k0065", 20), ("k0100", 30), ("k0120", 30), ("k0240", 10)]
        for start, length in probes:
            assert sharded.get_range(start, length) == oracle.get_range(
                start, length
            )
        # Crossing a shard boundary is the one divergence: the sharded
        # cache misses (falls back to the LSM) where the oracle hits.
        assert sharded.get_range("k0095", 10) is None
        assert oracle.get_range("k0095", 10) == entries(95, 105)


class TestRangePath:
    def test_in_shard_scan_hits(self):
        c = cache_of()
        c.insert_range("k0010", entries(10, 20))
        assert c.get_range("k0012", 5) == entries(12, 17)

    def test_cross_boundary_scan_is_a_miss(self):
        c = cache_of(boundaries=("k0015",))
        # Admission truncates at the boundary...
        admitted = c.insert_range("k0010", entries(10, 20))
        assert admitted == 5  # k0010..k0014 only
        # ...so a scan crossing it cannot be served.
        assert c.get_range("k0010", 8) is None
        # But the in-shard prefix is.
        assert c.get_range("k0010", 4) == entries(10, 14)

    def test_cross_shard_hit_rejected_and_counted(self):
        c = cache_of(boundaries=("k0015",))
        c.insert_range("k0010", entries(10, 15))  # fills shard 0 fully
        c.insert_range("k0015", entries(15, 20))  # shard 1
        # Shard 0's interval covers k0010..k0014; a 5-length scan fits.
        assert c.get_range("k0010", 5) == entries(10, 15)

    def test_budget_split_and_totals(self):
        c = ShardedRangeCache(1000, ["m"], entry_charge=100)
        assert c.budget_bytes == 1000
        shards = c.shards()
        assert shards[0].budget_bytes + shards[1].budget_bytes == 1000

    def test_resize(self):
        c = cache_of(budget_entries=30)
        c.insert_range("k0010", entries(10, 30))
        c.resize(5 * 100)
        assert c.used_bytes <= c.budget_bytes


class TestCoherence:
    def test_on_write_and_delete_routed(self):
        c = cache_of()
        c.insert_range("k0010", entries(10, 13))
        c.on_write("k0011", "fresh")
        assert c.get_point("k0011") == "fresh"
        c.on_delete("k0011")
        assert c.get_range("k0010", 2) == [("k0010", "v10"), ("k0012", "v12")]

    def test_policy_factory_applied_per_shard(self):
        c = ShardedRangeCache(
            1000,
            ["m"],
            entry_charge=100,
            policy_factory=lambda: LeCaRPolicy(history_size=8, seed=1),
        )
        for shard in c.shards():
            assert isinstance(shard._policy, LeCaRPolicy)

    def test_stats_aggregate(self):
        c = cache_of()
        c.insert_point("k0000", "x")
        c.get_point("k0000")
        c.get_point("k0250")
        stats = c.stats
        assert stats.hits == 1 and stats.misses == 1


class TestConcurrency:
    def test_parallel_clients_on_disjoint_shards(self):
        c = ShardedRangeCache(
            64 * 100,
            even_boundaries(400, 4, key_of=lambda i: f"k{i:04d}"),
            entry_charge=100,
            seed=1,
        )
        errors = []

        def client(base):
            try:
                for round_ in range(200):
                    key = f"k{base + round_ % 50:04d}"
                    c.insert_point(key, "v")
                    got = c.get_point(key)
                    if got != "v":
                        errors.append((base, key, got))
            except Exception as exc:  # noqa: BLE001
                errors.append((base, repr(exc)))

        threads = [threading.Thread(target=client, args=(b,)) for b in (0, 100, 200, 300)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert c.used_bytes <= c.budget_bytes
