"""Leaper-style post-compaction prefetching."""

from __future__ import annotations

from repro.cache.block_cache import BlockCache
from repro.cache.prefetcher import CompactionPrefetcher
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.keys import key_of, value_of


def warmed_setup(prefetch: bool, cache_blocks=64):
    opts = LSMOptions(memtable_entries=32, entries_per_sstable=64)
    tree = LSMTree(opts)
    tree.bulk_load((key_of(i), value_of(i)) for i in range(2000))
    cache = BlockCache(
        cache_blocks * opts.block_size, opts.block_size, tree.disk.read_block
    )
    tree.set_block_fetch(cache.fetch_through)
    prefetcher = CompactionPrefetcher.attach(tree, cache) if prefetch else None
    hot = [key_of(i) for i in range(0, 200, 2)]
    for _ in range(3):
        for key in hot:
            tree.get(key)
    return tree, cache, prefetcher, hot


class TestPrefetcher:
    def test_prefetch_fires_on_compaction(self):
        tree, cache, prefetcher, hot = warmed_setup(prefetch=True)
        # Update churn in the hot range forces compactions over it.
        for i in range(800):
            tree.put(key_of(i % 400), value_of(i % 400, 1))
        assert prefetcher.compactions_seen > 0
        assert prefetcher.prefetched_total > 0

    def test_prefetch_reduces_post_compaction_misses(self):
        results = {}
        for prefetch in (False, True):
            tree, cache, _, hot = warmed_setup(prefetch=prefetch)
            for i in range(800):
                tree.put(key_of(i % 400), value_of(i % 400, 1))
            reads_before = tree.sst_reads_total
            for key in hot:
                tree.get(key)
            results[prefetch] = tree.sst_reads_total - reads_before
        assert results[True] < results[False]

    def test_prefetch_respects_budget_and_cap(self):
        tree, cache, prefetcher, _ = warmed_setup(prefetch=True, cache_blocks=16)
        prefetcher._max_blocks = 4
        for i in range(600):
            tree.put(key_of(i % 300), value_of(i % 300, 1))
        assert cache.used_bytes <= cache.budget_bytes

    def test_prefetch_costs_no_metered_reads(self):
        """Prefetched blocks come from the compaction buffer."""
        tree, cache, prefetcher, _ = warmed_setup(prefetch=True)
        reads_before = tree.sst_reads_total
        # Writes to a *cold* range trigger compactions whose read path
        # never touches the metered disk (compaction reads entries
        # directly; prefetch inserts output blocks directly).
        for i in range(300):
            tree.put(key_of(1500 + i % 300), value_of(1500 + i % 300, 1))
        assert tree.sst_reads_total == reads_before

    def test_no_hot_blocks_means_no_prefetch(self):
        opts = LSMOptions(memtable_entries=32, entries_per_sstable=64)
        tree = LSMTree(opts)
        cache = BlockCache(32 * opts.block_size, opts.block_size, tree.disk.read_block)
        tree.set_block_fetch(cache.fetch_through)
        prefetcher = CompactionPrefetcher.attach(tree, cache)
        for i in range(500):  # cold writes only: cache is empty
            tree.put(key_of(i), value_of(i))
        assert prefetcher.compactions_seen > 0
        assert prefetcher.prefetched_total == 0
