"""Interval set: merging, covering queries, eviction splits."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.intervals import IntervalSet


class TestAdd:
    def test_disjoint_kept_separate(self):
        s = IntervalSet()
        s.add("a", "b")
        s.add("x", "y")
        assert s.intervals() == [("a", "b"), ("x", "y")]

    def test_overlap_merges(self):
        s = IntervalSet()
        s.add("a", "m")
        s.add("g", "z")
        assert s.intervals() == [("a", "z")]

    def test_touching_bounds_merge(self):
        s = IntervalSet()
        s.add("a", "g")
        s.add("g", "m")
        assert s.intervals() == [("a", "m")]

    def test_contained_interval_absorbed(self):
        s = IntervalSet()
        s.add("a", "z")
        s.add("c", "d")
        assert s.intervals() == [("a", "z")]

    def test_bridge_merges_three(self):
        s = IntervalSet()
        s.add("a", "c")
        s.add("j", "m")
        s.add("b", "k")
        assert s.intervals() == [("a", "m")]

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet().add("z", "a")

    def test_touching_and_adjacent_splice_keeps_invariants(self):
        # Micro-test for the batch splice: every add replaces the
        # absorbed span with one slice assignment, so a sequence of
        # touching (shared bound) and adjacent (non-touching) inserts
        # must leave the set sorted, disjoint, and well-formed.
        s = IntervalSet()
        s.add("d", "f")
        s.add("p", "r")
        s.check_invariants()
        s.add("f", "h")  # touches the first interval's end
        s.check_invariants()
        assert s.intervals() == [("d", "h"), ("p", "r")]
        s.add("j", "l")  # adjacent: between the two, touching neither
        s.check_invariants()
        assert s.intervals() == [("d", "h"), ("j", "l"), ("p", "r")]
        s.add("h", "p")  # touches both neighbours: one splice absorbs all three
        s.check_invariants()
        assert s.intervals() == [("d", "r")]


class TestCovering:
    def test_covering_hit_and_miss(self):
        s = IntervalSet()
        s.add("c", "g")
        assert s.covering("e") == ("c", "g")
        assert s.covering("c") == ("c", "g")
        assert s.covering("g") == ("c", "g")
        assert s.covering("b") is None
        assert s.covering("h") is None

    def test_index_covering(self):
        s = IntervalSet()
        s.add("a", "b")
        s.add("x", "z")
        assert s.index_covering("y") == 1
        assert s.index_covering("m") is None


class TestSplit:
    def test_split_middle(self):
        s = IntervalSet()
        s.add("a", "z")
        assert s.split_around("m", left_neighbor="l", right_neighbor="n")
        assert s.intervals() == [("a", "l"), ("n", "z")]

    def test_split_at_left_edge_drops_left_piece(self):
        s = IntervalSet()
        s.add("c", "g")
        s.split_around("c", left_neighbor="a", right_neighbor="d")
        assert s.intervals() == [("d", "g")]

    def test_split_at_right_edge_drops_right_piece(self):
        s = IntervalSet()
        s.add("c", "g")
        s.split_around("g", left_neighbor="f", right_neighbor="x")
        assert s.intervals() == [("c", "f")]

    def test_split_without_neighbors_removes_interval(self):
        s = IntervalSet()
        s.add("c", "g")
        s.split_around("e", left_neighbor=None, right_neighbor=None)
        assert s.intervals() == []

    def test_split_outside_any_interval_is_noop(self):
        s = IntervalSet()
        s.add("c", "g")
        assert not s.split_around("z", "y", None)
        assert s.intervals() == [("c", "g")]

    def test_clear(self):
        s = IntervalSet()
        s.add("a", "b")
        s.clear()
        assert len(s) == 0


bounds = st.tuples(
    st.text(alphabet="abcdef", min_size=1, max_size=2),
    st.text(alphabet="abcdef", min_size=1, max_size=2),
).map(lambda t: (min(t), max(t)))


@settings(max_examples=80, deadline=None)
@given(st.lists(bounds, max_size=20))
def test_property_disjoint_sorted_after_adds(intervals):
    s = IntervalSet()
    for a, b in intervals:
        s.add(a, b)
    out = s.intervals()
    assert out == sorted(out)
    for (a1, b1), (a2, b2) in zip(out, out[1:]):
        assert b1 < a2  # strictly disjoint, non-touching
    for a, b in intervals:
        assert s.covering(a) is not None and s.covering(b) is not None
