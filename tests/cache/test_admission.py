"""Admission control: frequency gating and the a/b partial-scan policy."""

from __future__ import annotations

import pytest

from repro.cache.admission import FrequencyAdmission, PartialScanAdmission
from repro.cache.sketch import CountMinSketch
from repro.errors import CacheError


def fresh_admission(threshold=0.0):
    return FrequencyAdmission(CountMinSketch(width=512, depth=4, seed=1), threshold)


class TestFrequencyAdmission:
    def test_zero_threshold_admits_everything(self):
        fa = fresh_admission(0.0)
        assert all(fa.observe_and_decide(f"k{i}") for i in range(20))
        assert fa.admitted_total == 20

    def test_high_threshold_rejects_cold_keys(self):
        fa = fresh_admission(0.5)
        for i in range(10):
            fa.observe_and_decide(f"cold{i}")
        # After 10 distinct misses, any single cold key is 1/11 < 0.5.
        assert fa.observe_and_decide("cold-new") is False
        assert fa.rejected_total >= 1

    def test_hot_key_crosses_threshold(self):
        fa = fresh_admission(0.3)
        for i in range(4):
            fa.observe_and_decide(f"noise{i}")
        for _ in range(5):
            decision = fa.observe_and_decide("hot")
        assert decision is True  # 6/(4+6) > 0.3 modulo decay

    def test_threshold_clamped(self):
        fa = fresh_admission()
        fa.set_threshold(5.0)
        assert fa.threshold == 1.0
        fa.set_threshold(-1.0)
        assert fa.threshold == 0.0

    def test_nan_threshold_rejected(self):
        with pytest.raises(CacheError):
            fresh_admission().set_threshold(float("nan"))

    def test_counting_continues_even_at_zero_threshold(self):
        fa = fresh_admission(0.0)
        for _ in range(3):
            fa.observe_and_decide("k")
        assert fa.sketch.estimate("k") == 3


class TestPartialScanAdmission:
    def test_short_scans_fully_admitted(self):
        psa = PartialScanAdmission(a=16, b=0.5)
        assert psa.admit_count(10) == 10
        assert psa.admit_count(16) == 16

    def test_long_scans_partially_admitted(self):
        psa = PartialScanAdmission(a=16, b=0.5)
        assert psa.admit_count(64) == 24  # 0.5 * (64 - 16)

    def test_b_zero_admits_nothing_beyond_a(self):
        psa = PartialScanAdmission(a=16, b=0.0)
        assert psa.admit_count(64) == 0
        assert psa.admit_count(8) == 8

    def test_b_one_is_nearly_full(self):
        psa = PartialScanAdmission(a=0, b=1.0)
        assert psa.admit_count(64) == 64

    def test_admit_count_capped_at_length(self):
        psa = PartialScanAdmission(a=0, b=1.0)
        assert psa.admit_count(5) == 5

    def test_zero_length(self):
        assert PartialScanAdmission().admit_count(0) == 0
        assert PartialScanAdmission().admit_count(-3) == 0

    def test_params_clamped(self):
        psa = PartialScanAdmission(a=-5, b=7.0)
        assert psa.a == 0.0 and psa.b == 1.0

    def test_nan_rejected(self):
        with pytest.raises(CacheError):
            PartialScanAdmission(a=float("nan"), b=0.5)

    def test_effective_threshold_tracks_admission(self):
        psa = PartialScanAdmission(a=16, b=0.5)
        assert psa.effective_threshold(16) == 16.0
        assert psa.effective_threshold(64) == 24.0
