"""KV (row) cache: point results only, write coherence."""

from __future__ import annotations

from repro.cache.kv_cache import KVCache


class TestKVCache:
    def test_put_get(self):
        c = KVCache(4096, entry_charge=1024)
        c.put("a", "1")
        assert c.get("a") == "1"
        assert c.get("b") is None

    def test_budget_in_entries(self):
        c = KVCache(2048, entry_charge=1024)
        for k in "abc":
            c.put(k, k)
        assert len(c) == 2
        assert c.used_bytes <= c.budget_bytes

    def test_on_write_refreshes_resident_only(self):
        c = KVCache(4096)
        c.put("a", "old")
        c.on_write("a", "new")
        c.on_write("not-cached", "x")
        assert c.get("a") == "new"
        assert c.get("not-cached") is None

    def test_on_delete_invalidates(self):
        c = KVCache(4096)
        c.put("a", "1")
        c.on_delete("a")
        assert c.get("a") is None
        assert c.stats.invalidations == 1

    def test_contains_no_stats(self):
        c = KVCache(4096)
        c.put("a", "1")
        assert c.contains("a") and not c.contains("b")
        assert c.stats.lookups == 0

    def test_resize(self):
        c = KVCache(4096, entry_charge=1024)
        for k in "abcd":
            c.put(k, k)
        c.resize(1024)
        assert len(c) == 1
        assert c.budget_bytes == 1024

    def test_occupancy(self):
        c = KVCache(2048, entry_charge=1024)
        c.put("a", "1")
        assert c.occupancy == 0.5
