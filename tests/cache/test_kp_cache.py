"""Key-pointer cache (AC-Key's middle tier) and its engine wiring."""

from __future__ import annotations

from repro.bench.harness import seed_database
from repro.bench.strategies import build_engine
from repro.cache.kp_cache import DEFAULT_POINTER_CHARGE, KPCache
from repro.lsm.options import LSMOptions
from repro.workloads.keys import key_of, value_of

OPTS = LSMOptions(memtable_entries=32, entries_per_sstable=64)


def kp_setup(num_keys=500, budget_entries=64):
    tree = seed_database(num_keys, OPTS)
    kp = KPCache(budget_entries * DEFAULT_POINTER_CHARGE, is_live=tree.disk.has)
    return tree, kp


class TestKPCache:
    def test_remember_then_lookup_skips_search(self):
        tree, kp = kp_setup()
        value, origin = tree.get_from_sstables_with_origin(key_of(5))
        assert value == value_of(5) and origin is not None
        kp.remember(key_of(5), origin)
        hit, got = kp.lookup(key_of(5), tree.disk.read_block)
        assert hit and got == value_of(5)

    def test_lookup_costs_exactly_one_block_read(self):
        tree, kp = kp_setup()
        _, origin = tree.get_from_sstables_with_origin(key_of(5))
        kp.remember(key_of(5), origin)
        reads = tree.disk.block_reads_total
        kp.lookup(key_of(5), tree.disk.read_block)
        assert tree.disk.block_reads_total == reads + 1

    def test_stale_pointer_dropped_after_compaction(self):
        tree, kp = kp_setup()
        _, origin = tree.get_from_sstables_with_origin(key_of(5))
        kp.remember(key_of(5), origin)
        # Churn until the pointed-to file is compacted away.
        i = 0
        while tree.disk.has(origin.sst_id) and i < 5000:
            tree.put(key_of(i % 500), value_of(i % 500, 1))
            i += 1
        assert not tree.disk.has(origin.sst_id)
        hit, _ = kp.lookup(key_of(5), tree.disk.read_block)
        assert not hit
        assert kp.stale_hits == 1
        assert not kp.contains(key_of(5))

    def test_write_and_delete_invalidate(self):
        tree, kp = kp_setup()
        _, origin = tree.get_from_sstables_with_origin(key_of(5))
        kp.remember(key_of(5), origin)
        kp.on_write(key_of(5))
        assert not kp.contains(key_of(5))
        kp.remember(key_of(6), origin)
        kp.on_delete(key_of(6))
        assert not kp.contains(key_of(6))

    def test_budget_in_pointer_units(self):
        tree, kp = kp_setup(budget_entries=4)
        _, origin = tree.get_from_sstables_with_origin(key_of(0))
        for i in range(10):
            kp.remember(key_of(i), origin)
        assert len(kp) <= 4
        assert kp.used_bytes <= kp.budget_bytes


class TestACKeyStrategy:
    def test_builds_and_serves(self):
        tree = seed_database(500, OPTS)
        engine = build_engine("ackey", tree, cache_bytes=256 * 1024, seed=1)
        assert engine.kp_cache is not None
        assert engine.get(key_of(10)) == value_of(10)
        assert engine.scan(key_of(20), 4)[0][0] == key_of(20)

    def test_kp_path_serves_after_kv_eviction(self):
        tree = seed_database(2000, OPTS)
        engine = build_engine("ackey", tree, cache_bytes=128 * 1024, seed=1)
        # Touch many keys: KV (32 entries) churns, KP (163 ptrs) holds more.
        for i in range(0, 600, 5):
            engine.get(key_of(i))
        assert len(engine.kp_cache) > len(engine.kv_cache)

    def test_stale_pointers_never_serve_wrong_data(self):
        tree = seed_database(1000, OPTS)
        engine = build_engine("ackey", tree, cache_bytes=128 * 1024, seed=1)
        for i in range(0, 200, 2):
            engine.get(key_of(i))
        for i in range(1500):  # churn forces compactions
            engine.put(key_of(i % 1000), value_of(i % 1000, 7))
        for i in range(0, 200, 2):
            assert engine.get(key_of(i)) == value_of(i, 7), i

    def test_correct_under_mixed_ops(self):
        from repro.bench.harness import apply_operation
        from repro.workloads.generator import WorkloadGenerator, balanced_workload
        from repro.workloads.keys import index_of

        tree = seed_database(500, OPTS)
        engine = build_engine("ackey", tree, cache_bytes=128 * 1024, seed=1)
        model = {key_of(i): value_of(i) for i in range(500)}
        gen = WorkloadGenerator(balanced_workload(500), seed=4)
        for op in gen.ops(1500):
            if op.kind == "put":
                model[op.key] = op.value
            apply_operation(engine, op)
        for i in range(0, 500, 17):
            assert engine.get(key_of(i)) == model[key_of(i)]
