"""GhostList and the shared second-tier cache: admission, ARC ghosts,
byte conservation, shard purges, and invariants."""

from __future__ import annotations

import pytest

from repro.cache.ghost import GhostList
from repro.cache.tier2 import Tier2Cache
from repro.errors import CacheError, InvariantError
from repro.lsm.block import BlockHandle, DataBlock

BLOCK = 4096


def _block(n: int = 0) -> DataBlock:
    return DataBlock(BlockHandle(0, n), [(f"k{n:04d}", f"v{n}")])


def _key(shard: int, n: int):
    return (shard, BlockHandle(sst_id=shard * 1000 + 1, block_no=n))


def _cache(blocks: int = 4, **kw) -> Tier2Cache:
    return Tier2Cache(blocks * BLOCK, BLOCK, **kw)


def _fill(cache: Tier2Cache, keys) -> None:
    """Force-admit keys via the double-hit path (probe twice, offer)."""
    for key in keys:
        cache.tier2_probe(key)
        cache.tier2_probe(key)
        assert cache.tier2_offer(key, _block())


class TestGhostList:
    def test_capacity_must_be_positive(self):
        with pytest.raises(CacheError):
            GhostList(0)

    def test_record_contains_discard(self):
        ghosts: GhostList[str] = GhostList(4)
        ghosts.record("a")
        assert "a" in ghosts and len(ghosts) == 1
        assert ghosts.discard("a")
        assert not ghosts.discard("a")
        assert "a" not in ghosts

    def test_fifo_trim_past_capacity(self):
        ghosts: GhostList[int] = GhostList(3)
        for i in range(5):
            ghosts.record(i)
        assert list(ghosts) == [2, 3, 4]

    def test_rerecord_refreshes_position(self):
        ghosts: GhostList[int] = GhostList(3)
        for i in range(3):
            ghosts.record(i)
        ghosts.record(0)  # now youngest
        ghosts.record(3)
        assert list(ghosts) == [2, 0, 3]

    def test_set_capacity_trims_oldest(self):
        ghosts: GhostList[int] = GhostList(4)
        for i in range(4):
            ghosts.record(i)
        ghosts.set_capacity(2)
        assert list(ghosts) == [2, 3]
        ghosts.check_invariants()

    def test_invariants_catch_overflow(self):
        ghosts: GhostList[int] = GhostList(2)
        ghosts.record(1)
        ghosts._keys[99] = None  # corrupt past capacity
        ghosts._keys[98] = None
        with pytest.raises(InvariantError):
            ghosts.check_invariants()


class TestAdmission:
    def test_cold_offer_is_rejected(self):
        cache = _cache()
        key = _key(0, 0)
        assert not cache.tier2_offer(key, _block())
        assert cache.rejects == 1 and cache.admits == 0
        assert key not in cache

    def test_second_demand_admits_via_sketch(self):
        cache = _cache()
        key = _key(0, 0)
        cache.tier2_probe(key)  # first fleet sighting
        cache.tier2_probe(key)  # second: estimate reaches 2
        assert cache.tier2_offer(key, _block())
        assert key in cache and cache.admits == 1

    def test_ghost_hit_admits_and_counts(self):
        cache = _cache(blocks=1)
        a, b = _key(0, 0), _key(0, 1)
        _fill(cache, [a])
        _fill(cache, [b])  # evicts a into B1
        assert a not in cache
        cache.tier2_probe(a)
        cache.tier2_probe(a)
        assert cache.tier2_offer(a, _block())
        assert cache.ghost_hits_recency == 1

    def test_admits_plus_rejects_equals_demotions(self):
        cache = _cache(blocks=2)
        for i in range(20):
            key = _key(0, i)
            if i % 3 == 0:
                cache.tier2_probe(key)
                cache.tier2_probe(key)
            cache.tier2_offer(key, _block(i))
        assert cache.admits + cache.rejects == cache.demotions
        cache.check_invariants()

    def test_probe_hit_and_t1_to_t2_promotion(self):
        cache = _cache()
        key = _key(0, 0)
        _fill(cache, [key])
        assert cache.tier2_probe(key) is not None  # T1 -> T2
        assert cache.hits == 1
        assert cache.tier2_probe(key) is not None  # stays in T2
        assert cache.hits == 2


class TestConservation:
    def test_used_never_exceeds_budget_under_churn(self):
        cache = _cache(blocks=3)
        for i in range(200):
            key = _key(i % 4, i % 37)
            if cache.tier2_probe(key) is None:
                cache.tier2_offer(key, _block(i))
            assert cache.used_bytes <= cache.budget_bytes
            cache.check_invariants()
        assert cache.evictions > 0

    def test_resize_evicts_to_fit(self):
        cache = _cache(blocks=4)
        _fill(cache, [_key(0, i) for i in range(4)])
        assert cache.used_bytes == 4 * BLOCK
        evicted = cache.tier2_resize(2 * BLOCK)
        assert evicted == 2
        assert cache.used_bytes <= cache.budget_bytes == 2 * BLOCK
        cache.check_invariants()

    def test_oversized_block_rejected(self):
        cache = Tier2Cache(BLOCK, 2 * BLOCK)
        key = _key(0, 0)
        cache.tier2_probe(key)
        cache.tier2_probe(key)
        assert not cache.tier2_offer(key, _block())

    def test_resident_reoffer_rejected(self):
        cache = _cache()
        key = _key(0, 0)
        _fill(cache, [key])
        assert not cache.tier2_offer(key, _block())
        assert cache.admits + cache.rejects == cache.demotions


class TestShardNamespace:
    def test_same_handle_different_shards_do_not_alias(self):
        cache = _cache()
        handle = BlockHandle(sst_id=1, block_no=0)
        a, b = (0, handle), (1, handle)
        _fill(cache, [a])
        assert cache.tier2_probe(b) is None

    def test_drop_shard_purges_resident_and_ghosts(self):
        cache = _cache(blocks=2)
        mine = [_key(0, i) for i in range(4)]  # overflows into ghosts
        theirs = _key(1, 0)
        _fill(cache, mine)
        _fill(cache, [theirs])
        dropped = cache.tier2_drop_shard(0)
        assert dropped >= 1
        assert all(k not in cache for k in mine)
        assert theirs in cache
        assert cache.tier2_probe(mine[0]) is None
        cache.check_invariants()

    def test_clear_empties_everything(self):
        cache = _cache()
        _fill(cache, [_key(0, i) for i in range(3)])
        cache.tier2_clear()
        assert len(cache) == 0 and cache.used_bytes == 0
        cache.check_invariants()


class TestDeterminism:
    def test_identical_traces_produce_identical_state(self):
        def run():
            cache = _cache(blocks=3, sketch_seed=7)
            log = []
            for i in range(300):
                key = _key(i % 3, (i * 7) % 23)
                hit = cache.tier2_probe(key) is not None
                admitted = False
                if not hit:
                    admitted = cache.tier2_offer(key, _block(i))
                log.append((hit, admitted))
            return log, cache.hits, cache.admits, cache.ghost_hits

        assert run() == run()

    def test_config_error_on_bad_budget(self):
        with pytest.raises(CacheError):
            Tier2Cache(-1, BLOCK)
        with pytest.raises(CacheError):
            Tier2Cache(BLOCK, 0)
