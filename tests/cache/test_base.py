"""BudgetedCache container and CacheStats accounting."""

from __future__ import annotations

import pytest

from repro.cache.base import BudgetedCache, CacheStats
from repro.cache.lru import LRUPolicy
from repro.errors import CacheError


def make_cache(budget=4, charge=1):
    return BudgetedCache(budget, LRUPolicy(), lambda k, v: charge)


class TestStats:
    def test_hit_rate(self):
        s = CacheStats(hits=3, misses=1)
        assert s.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0

    def test_snapshot_delta(self):
        s = CacheStats(hits=5, misses=2, evictions=1)
        snap = s.snapshot()
        s.hits += 3
        s.misses += 1
        d = s.delta(snap)
        assert (d.hits, d.misses, d.evictions) == (3, 1, 0)


class TestLookups:
    def test_get_hit_miss_counting(self):
        c = make_cache()
        c.put("a", "1")
        assert c.get("a") == "1"
        assert c.get("b") is None
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_peek_no_side_effects(self):
        c = make_cache()
        c.put("a", "1")
        assert c.peek("a") == "1"
        assert c.peek("b") is None
        assert c.stats.lookups == 0


class TestCapacity:
    def test_eviction_on_overflow(self):
        c = make_cache(budget=2)
        for k in "abc":
            c.put(k, k)
        assert len(c) == 2 and "a" not in c
        assert c.stats.evictions == 1

    def test_oversized_item_rejected(self):
        c = BudgetedCache(4, LRUPolicy(), lambda k, v: 10)
        assert c.put("big", "x") is False
        assert c.stats.rejections == 1
        assert len(c) == 0

    def test_resize_down_evicts(self):
        c = make_cache(budget=4)
        for k in "abcd":
            c.put(k, k)
        evicted = c.resize(2)
        assert evicted == 2 and len(c) == 2
        assert c.budget_bytes == 2

    def test_resize_up_keeps_contents(self):
        c = make_cache(budget=2)
        c.put("a", "1")
        c.resize(10)
        assert c.get("a") == "1"

    def test_negative_budget_rejected(self):
        with pytest.raises(CacheError):
            make_cache().resize(-1)
        with pytest.raises(CacheError):
            BudgetedCache(-1, LRUPolicy(), lambda k, v: 1)

    def test_occupancy(self):
        c = make_cache(budget=4)
        c.put("a", "1")
        assert c.occupancy == 0.25
        assert BudgetedCache(0, LRUPolicy(), lambda k, v: 1).occupancy == 0.0

    def test_variable_charges_tracked(self):
        c = BudgetedCache(10, LRUPolicy(), lambda k, v: len(v))
        c.put("a", "xxx")
        c.put("b", "yyyy")
        assert c.used_bytes == 7
        c.put("a", "z")  # overwrite shrinks the charge
        assert c.used_bytes == 5


class TestMutation:
    def test_overwrite_promotes(self):
        c = make_cache(budget=2)
        c.put("a", "1")
        c.put("b", "2")
        c.put("a", "1*")  # now b is LRU
        c.put("c", "3")
        assert "b" not in c and c.get("a") == "1*"

    def test_remove_counts_invalidation(self):
        c = make_cache()
        c.put("a", "1")
        assert c.remove("a") is True
        assert c.remove("a") is False
        assert c.stats.invalidations == 1
        assert c.stats.evictions == 0

    def test_clear(self):
        c = make_cache()
        for k in "abc":
            c.put(k, k)
        c.clear()
        assert len(c) == 0 and c.used_bytes == 0

    def test_keys_iterates_residents(self):
        c = make_cache()
        c.put("a", "1")
        c.put("b", "2")
        assert sorted(c.keys()) == ["a", "b"]
