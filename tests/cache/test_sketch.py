"""Count-Min sketch: bounds, decay, conservative update."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.sketch import CountMinSketch
from repro.errors import CacheError


class TestBasics:
    def test_counts_single_key(self):
        sk = CountMinSketch(width=256, depth=4, seed=1)
        for _ in range(5):
            sk.increment("a")
        assert sk.estimate("a") == 5
        assert sk.total == 5

    def test_unseen_key_estimates_low(self):
        sk = CountMinSketch(width=1024, depth=4, seed=1)
        for i in range(50):
            sk.increment(f"k{i}")
        assert sk.estimate("never-seen") <= 2  # collisions only

    def test_normalized(self):
        sk = CountMinSketch(width=256, depth=4, seed=1)
        assert sk.normalized("a") == 0.0
        for _ in range(4):
            sk.increment("a")
        sk.increment("b")
        assert abs(sk.normalized("a") - 4 / 5) < 1e-9

    def test_reset(self):
        sk = CountMinSketch(width=64, depth=2, seed=1)
        sk.increment("a")
        sk.reset()
        assert sk.estimate("a") == 0 and sk.total == 0

    def test_size_bytes(self):
        sk = CountMinSketch(width=128, depth=4)
        assert sk.size_bytes == 128 * 4 * 8  # int64 counters

    def test_validation(self):
        with pytest.raises(CacheError):
            CountMinSketch(width=0)
        with pytest.raises(CacheError):
            CountMinSketch(saturation=1)


class TestDecay:
    def test_saturation_halves_everything(self):
        sk = CountMinSketch(width=256, depth=4, saturation=8, seed=1)
        sk.increment("bg")  # background key
        for _ in range(8):
            new_est = sk.increment("hot")
        assert sk.decays_total == 1
        assert new_est == 4  # reported post-decay
        assert sk.estimate("hot") <= 4
        assert sk.total <= 5

    def test_decay_keeps_relative_order(self):
        sk = CountMinSketch(width=512, depth=4, saturation=8, seed=2)
        for _ in range(7):
            sk.increment("hot")
        for _ in range(2):
            sk.increment("warm")
        sk.increment("hot")  # decay fires
        assert sk.estimate("hot") > sk.estimate("warm")

    def test_normalized_bounded_through_heavy_decay(self):
        # Regression for the old min(1.0, ...) clamp: conservative
        # update + lockstep halving keep estimate <= total through any
        # number of decays, so no clamp is needed for a healthy sketch.
        sk = CountMinSketch(width=64, depth=4, saturation=4, seed=5)
        for i in range(200):
            sk.increment(f"k{i % 7}")
        assert sk.decays_total > 0
        for i in range(7):
            assert 0.0 <= sk.normalized(f"k{i}") <= 1.0

    def test_normalized_raises_on_corrupted_bookkeeping(self):
        # The clamp used to mask exactly this: counters exceeding the
        # global total.  The decay-aware bound must raise instead.
        sk = CountMinSketch(width=64, depth=4, seed=5)
        for _ in range(6):
            sk.increment("a")
        sk.total = 3  # simulate drifted bookkeeping (estimate("a") == 6)
        with pytest.raises(CacheError, match="exceeds the global total"):
            sk.normalized("a")


@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from([f"k{i}" for i in range(12)]), max_size=60))
def test_property_never_underestimates(keys):
    """With saturation high enough to never decay, estimate >= true count."""
    sk = CountMinSketch(width=64, depth=4, saturation=1000, seed=3)
    true = {}
    for k in keys:
        sk.increment(k)
        true[k] = true.get(k, 0) + 1
    for k, count in true.items():
        assert sk.estimate(k) >= count
    assert sk.total == len(keys)


class TestBatchParity:
    """The batched sketch API must equal the scalar loop bit-for-bit."""

    def _twins(self, **kw):
        kw.setdefault("width", 64)
        kw.setdefault("depth", 4)
        kw.setdefault("saturation", 4)  # low: decay epochs trigger in-test
        kw.setdefault("seed", 3)
        return CountMinSketch(**kw), CountMinSketch(**kw)

    def test_columns_batch_equals_scalar(self):
        batched, scalar = self._twins()
        keys = [f"k{i % 9}" for i in range(24)]  # > the scalar crossover
        assert batched.columns_batch(keys) == [scalar.columns(k) for k in keys]

    def test_estimate_batch_equals_scalar(self):
        batched, scalar = self._twins(saturation=1000)
        for sk in (batched, scalar):
            for i in range(30):
                sk.increment(f"k{i % 7}")
        keys = [f"k{i % 11}" for i in range(20)]
        assert batched.estimate_batch(keys) == [scalar.estimate(k) for k in keys]

    def test_update_batch_with_duplicates_and_decay(self):
        # Duplicates force order dependence (the second occurrence must
        # see the first's counters) and saturation=4 forces mid-batch
        # decay epochs; everything must still match the scalar replay.
        batched, scalar = self._twins()
        keys = [f"k{i % 3}" for i in range(25)]
        assert batched.update_batch(keys) == [scalar.increment(k) for k in keys]
        assert batched._rows_tab == scalar._rows_tab
        assert batched.total == scalar.total
        assert batched.decays_total == scalar.decays_total
        assert batched.decays_total > 0  # the scenario actually decayed

    def test_small_batches_take_the_scalar_fallback(self):
        batched, scalar = self._twins()
        keys = ["a", "b", "a"]  # below the numpy crossover
        assert batched.update_batch(keys) == [scalar.increment(k) for k in keys]
        assert batched._rows_tab == scalar._rows_tab

    def test_empty_batch(self):
        sk, _ = self._twins()
        assert sk.estimate_batch([]) == []
        assert sk.update_batch([]) == []
        assert sk.total == 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.sampled_from([f"k{i}" for i in range(6)]), max_size=40),
    st.integers(min_value=0, max_value=2**32),
)
def test_property_batch_equals_scalar_replay(keys, seed):
    """update_batch/estimate_batch == the scalar loop exactly, for any
    key sequence (duplicates included) across any decay epochs."""
    batched = CountMinSketch(width=32, depth=3, saturation=3, seed=seed)
    scalar = CountMinSketch(width=32, depth=3, saturation=3, seed=seed)
    assert batched.update_batch(keys) == [scalar.increment(k) for k in keys]
    assert batched._rows_tab == scalar._rows_tab
    assert batched.total == scalar.total
    assert batched.decays_total == scalar.decays_total
    probe = [f"k{i}" for i in range(6)]
    assert batched.estimate_batch(probe) == [scalar.estimate(k) for k in probe]
