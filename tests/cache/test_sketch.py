"""Count-Min sketch: bounds, decay, conservative update."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.sketch import CountMinSketch
from repro.errors import CacheError


class TestBasics:
    def test_counts_single_key(self):
        sk = CountMinSketch(width=256, depth=4, seed=1)
        for _ in range(5):
            sk.increment("a")
        assert sk.estimate("a") == 5
        assert sk.total == 5

    def test_unseen_key_estimates_low(self):
        sk = CountMinSketch(width=1024, depth=4, seed=1)
        for i in range(50):
            sk.increment(f"k{i}")
        assert sk.estimate("never-seen") <= 2  # collisions only

    def test_normalized(self):
        sk = CountMinSketch(width=256, depth=4, seed=1)
        assert sk.normalized("a") == 0.0
        for _ in range(4):
            sk.increment("a")
        sk.increment("b")
        assert abs(sk.normalized("a") - 4 / 5) < 1e-9

    def test_reset(self):
        sk = CountMinSketch(width=64, depth=2, seed=1)
        sk.increment("a")
        sk.reset()
        assert sk.estimate("a") == 0 and sk.total == 0

    def test_size_bytes(self):
        sk = CountMinSketch(width=128, depth=4)
        assert sk.size_bytes == 128 * 4 * 8  # int64 counters

    def test_validation(self):
        with pytest.raises(CacheError):
            CountMinSketch(width=0)
        with pytest.raises(CacheError):
            CountMinSketch(saturation=1)


class TestDecay:
    def test_saturation_halves_everything(self):
        sk = CountMinSketch(width=256, depth=4, saturation=8, seed=1)
        sk.increment("bg")  # background key
        for _ in range(8):
            new_est = sk.increment("hot")
        assert sk.decays_total == 1
        assert new_est == 4  # reported post-decay
        assert sk.estimate("hot") <= 4
        assert sk.total <= 5

    def test_decay_keeps_relative_order(self):
        sk = CountMinSketch(width=512, depth=4, saturation=8, seed=2)
        for _ in range(7):
            sk.increment("hot")
        for _ in range(2):
            sk.increment("warm")
        sk.increment("hot")  # decay fires
        assert sk.estimate("hot") > sk.estimate("warm")

    def test_normalized_bounded_through_heavy_decay(self):
        # Regression for the old min(1.0, ...) clamp: conservative
        # update + lockstep halving keep estimate <= total through any
        # number of decays, so no clamp is needed for a healthy sketch.
        sk = CountMinSketch(width=64, depth=4, saturation=4, seed=5)
        for i in range(200):
            sk.increment(f"k{i % 7}")
        assert sk.decays_total > 0
        for i in range(7):
            assert 0.0 <= sk.normalized(f"k{i}") <= 1.0

    def test_normalized_raises_on_corrupted_bookkeeping(self):
        # The clamp used to mask exactly this: counters exceeding the
        # global total.  The decay-aware bound must raise instead.
        sk = CountMinSketch(width=64, depth=4, seed=5)
        for _ in range(6):
            sk.increment("a")
        sk.total = 3  # simulate drifted bookkeeping (estimate("a") == 6)
        with pytest.raises(CacheError, match="exceeds the global total"):
            sk.normalized("a")


@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from([f"k{i}" for i in range(12)]), max_size=60))
def test_property_never_underestimates(keys):
    """With saturation high enough to never decay, estimate >= true count."""
    sk = CountMinSketch(width=64, depth=4, saturation=1000, seed=3)
    true = {}
    for k in keys:
        sk.increment(k)
        true[k] = true.get(k, 0) + 1
    for k, count in true.items():
        assert sk.estimate(k) >= count
    assert sk.total == len(keys)
