"""Block cache: fetch-through, sharding, compaction decay, admission hook."""

from __future__ import annotations

import pytest

from repro.cache.block_cache import BlockCache
from repro.errors import CacheError
from repro.lsm.block import BlockHandle
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.keys import key_of, value_of


def tree_with_cache(budget_blocks=8, num_shards=1, num_keys=500):
    opts = LSMOptions(memtable_entries=32, entries_per_sstable=64)
    tree = LSMTree(opts)
    tree.bulk_load((key_of(i), value_of(i)) for i in range(num_keys))
    cache = BlockCache(
        budget_blocks * opts.block_size,
        block_size=opts.block_size,
        backing_fetch=tree.disk.read_block,
        num_shards=num_shards,
    )
    tree.set_block_fetch(cache.fetch_through)
    return tree, cache


class TestFetchThrough:
    def test_second_read_is_a_hit(self):
        tree, cache = tree_with_cache()
        tree.get(key_of(100))
        reads = tree.sst_reads_total
        tree.get(key_of(100))
        assert tree.sst_reads_total == reads  # served from cache
        assert cache.stats.hits >= 1

    def test_budget_respected(self):
        tree, cache = tree_with_cache(budget_blocks=4)
        for i in range(0, 500, 10):
            tree.get(key_of(i))
        assert cache.used_bytes <= cache.budget_bytes
        assert len(cache) <= 4

    def test_admission_hook_can_reject(self):
        tree, cache = tree_with_cache()
        cache.admission_hook = lambda handle: False
        tree.get(key_of(1))
        assert len(cache) == 0
        assert cache.stats.rejections > 0
        # Rejected fills must still serve the data.
        assert tree.get(key_of(1)) == value_of(1)

    def test_direct_put_and_get(self):
        tree, cache = tree_with_cache()
        table = tree.levels.all_files()[0]
        handle = BlockHandle(table.sst_id, 0)
        block = tree.disk.read_block(handle)
        assert cache.put(handle, block)
        assert cache.get(handle) is block
        assert handle in cache


class TestCompactionDecay:
    def test_compacted_blocks_stop_hitting(self):
        tree, cache = tree_with_cache(budget_blocks=64)
        for i in range(0, 500, 5):
            tree.get(key_of(i))
        cached_before = {h.sst_id for h in cache._shards[0].keys()}
        # Heavy updates force compactions that rewrite most files.
        for i in range(1500):
            tree.put(key_of(i % 500), value_of(i % 500, 1))
        live = set(tree.disk.live_sst_ids())
        dead_cached = cached_before - live
        assert dead_cached  # some cached files were compacted away

    def test_purge_sst(self):
        tree, cache = tree_with_cache(budget_blocks=64)
        tree.get(key_of(100))
        sst_ids = {h.sst_id for h in cache._shards[0].keys()}
        assert sst_ids
        victim = next(iter(sst_ids))
        dropped = cache.purge_sst(victim)
        assert dropped >= 1
        assert all(h.sst_id != victim for h in cache._shards[0].keys())


class TestSharding:
    def test_shard_budgets_sum_to_total(self):
        tree, cache = tree_with_cache(budget_blocks=7, num_shards=3)
        assert cache.budget_bytes == 7 * tree.options.block_size

    def test_sharded_operation(self):
        tree, cache = tree_with_cache(budget_blocks=16, num_shards=4)
        for i in range(0, 500, 7):
            tree.get(key_of(i))
        assert cache.used_bytes <= cache.budget_bytes
        assert cache.stats.lookups > 0

    def test_resize_repartitions(self):
        tree, cache = tree_with_cache(budget_blocks=16, num_shards=4)
        for i in range(0, 500, 7):
            tree.get(key_of(i))
        cache.resize(4 * tree.options.block_size)
        assert cache.budget_bytes == 4 * tree.options.block_size
        assert cache.used_bytes <= cache.budget_bytes

    def test_invalid_shard_count(self):
        with pytest.raises(CacheError):
            BlockCache(1024, 256, lambda h: None, num_shards=0)

    def test_occupancy(self):
        tree, cache = tree_with_cache(budget_blocks=8)
        assert cache.occupancy == 0.0
        tree.get(key_of(0))
        assert cache.occupancy > 0.0
