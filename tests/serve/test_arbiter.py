"""Budget arbiter: marginal-utility splits, floors, and invariants."""

from __future__ import annotations

import pytest

from repro.bench.harness import seed_database
from repro.bench.strategies import build_engine
from repro.errors import ConfigError, InvariantError
from repro.lsm.options import LSMOptions
from repro.serve.arbiter import BudgetArbiter
from repro.workloads.generator import WorkloadGenerator, point_lookup_workload
from repro.workloads.keys import key_of

NUM_KEYS = 800
BUDGET = 256 * 1024


def _engine(seed=0):
    options = LSMOptions(memtable_entries=32, entries_per_sstable=64)
    tree = seed_database(NUM_KEYS, options, seed=7)
    engine = build_engine("block", tree, BUDGET // 2, seed=seed)
    engine.window_size = 200
    return engine


def _drive(engine, ops, seed=3):
    generator = WorkloadGenerator(point_lookup_workload(NUM_KEYS), seed=seed)
    for op in generator.ops(ops):
        engine.get(op.key)
    engine.flush_window()


class TestConstruction:
    def test_validation(self):
        engines = [_engine(0), _engine(1)]
        with pytest.raises(ConfigError):
            BudgetArbiter([], BUDGET)
        with pytest.raises(ConfigError):
            BudgetArbiter(engines, -1)
        with pytest.raises(ConfigError):
            BudgetArbiter(engines, BUDGET, min_share=0.9)
        with pytest.raises(ConfigError):
            BudgetArbiter(engines, BUDGET, max_step=0.0)

    def test_initial_split_is_even_and_exact(self):
        engines = [_engine(i) for i in range(3)]
        arbiter = BudgetArbiter(engines, BUDGET)
        assert arbiter.shares == [pytest.approx(1 / 3)] * 3
        assert sum(e.cache_budget_total for e in engines) == BUDGET
        arbiter.check_invariants()


class TestRebalancing:
    def test_budget_follows_miss_traffic(self):
        busy, idle = _engine(0), _engine(1)
        arbiter = BudgetArbiter([busy, idle], BUDGET)
        _drive(busy, 2_000)  # only the first shard pays disk reads
        assert busy.collector.lifetime.io_miss > 0
        evicted = arbiter.rebalance(now_us=1.0)
        assert arbiter.shares[0] > arbiter.shares[1]
        assert busy.cache_budget_total > idle.cache_budget_total
        assert sum(e.cache_budget_total for e in [busy, idle]) == BUDGET
        assert evicted >= 0
        arbiter.check_invariants()

    def test_max_step_rate_limits_movement(self):
        busy, idle = _engine(0), _engine(1)
        arbiter = BudgetArbiter([busy, idle], BUDGET, max_step=0.1)
        _drive(busy, 2_000)
        arbiter.rebalance()
        # One round can move a share by at most max_step before the floor
        # renormalisation.
        assert arbiter.shares[0] <= 0.5 + 0.1 + 1e-9

    def test_min_share_floor_protects_idle_shards(self):
        busy, idle = _engine(0), _engine(1)
        arbiter = BudgetArbiter(
            [busy, idle], BUDGET, min_share=0.2, max_step=1.0
        )
        for _ in range(6):
            _drive(busy, 600, seed=busy.tree.gets_total + 11)
            arbiter.rebalance()
        assert arbiter.shares[1] >= 0.2 - 1e-9
        assert idle.cache_budget_total >= int(0.19 * BUDGET)

    def test_history_and_counters(self):
        engines = [_engine(0), _engine(1)]
        arbiter = BudgetArbiter(engines, BUDGET)
        _drive(engines[0], 800)
        arbiter.rebalance(now_us=123.0)
        arbiter.rebalance(now_us=456.0)
        assert arbiter.rebalances == 2
        assert [t for t, _ in arbiter.history] == [123.0, 456.0]
        for _, shares in arbiter.history:
            assert sum(shares) == pytest.approx(1.0)


class TestInvariants:
    def test_budget_leak_detected(self):
        engines = [_engine(0), _engine(1)]
        arbiter = BudgetArbiter(engines, BUDGET)
        engines[0].set_cache_budget(1024)  # out-of-band shrink: leak
        with pytest.raises(InvariantError):
            arbiter.check_invariants()

    def test_corrupted_shares_detected(self):
        engines = [_engine(0)]
        arbiter = BudgetArbiter(engines, BUDGET)
        arbiter.shares = [0.5]
        with pytest.raises(InvariantError):
            arbiter.check_invariants()

    def test_sampled_sanitizer_hook(self):
        engines = [_engine(0), _engine(1)]
        arbiter = BudgetArbiter(engines, BUDGET)
        arbiter.enable_sanitizer(period=1)
        _drive(engines[0], 400)
        arbiter.rebalance()
        assert arbiter._sanitizer is not None
        assert arbiter._sanitizer.checks_run >= 1
