"""Fleet resilience end to end: failover, hedges, deadlines, determinism.

The claims under test, from the resilience layer's contract:

* two same-seed chaos runs are byte-identical (fingerprint and audit
  logs), and the fingerprint only folds resilience outputs when the
  feature is active — legacy configurations keep their golden hashes;
* crashing shards mid-run loses **zero acknowledged writes**: every
  write was shipped to the replica's WAL before the ack, and promotion
  replays it through the engine's normal crash-recovery path;
* scans that scatter over a dead shard complete as explicitly *partial*
  results (counted, never silently wrong); and
* request conservation (issued = completed + rejected) survives crashes,
  deadline expiry, breaker refusals, and degradation shedding.
"""

from __future__ import annotations

import pytest

from repro.bench.strategies import build_engine
from repro.errors import ConfigError
from repro.faults.fleet import FleetFaultConfig
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.serve.resilience import ResilienceConfig
from repro.serve.simulator import ServeConfig, run_serve
from repro.workloads.keys import key_of, value_of


def chaos_config(seed=11, partition="hash", crashes=2, **overrides):
    resilience = ResilienceConfig(
        fleet_faults=FleetFaultConfig(
            crashes=crashes,
            earliest_us=40_000.0,
            latest_us=300_000.0,
            seed=seed,
        ),
        hedge_quantile=overrides.pop("hedge_quantile", 0.0),
        op_timeout_us=overrides.pop("op_timeout_us", 0.0),
    )
    return ServeConfig(
        num_clients=4,
        num_shards=4,
        total_ops=3_000,
        num_keys=1_500,
        seed=seed,
        partition=partition,
        queue_depth=32,
        keep_trace=False,
        resilience=resilience,
        **overrides,
    )


@pytest.fixture(scope="module")
def default_chaos():
    """One shared default-config chaos run (the config is read-only)."""
    return run_serve(chaos_config())


class TestValidation:
    def test_fleet_faults_require_replicas(self):
        with pytest.raises(ConfigError):
            ServeConfig(
                resilience=ResilienceConfig(
                    replicas=False,
                    fleet_faults=FleetFaultConfig(crashes=1),
                )
            )

    def test_negative_deadline_rejected(self):
        with pytest.raises(ConfigError):
            ServeConfig(op_deadline_us=-1.0)

    def test_resilience_active_flag(self):
        assert not ServeConfig().resilience_active
        assert ServeConfig(op_deadline_us=1.0).resilience_active
        assert ServeConfig(resilience=ResilienceConfig()).resilience_active


class TestLegacyFingerprint:
    def test_disabled_runs_do_not_fold_resilience_fields(self):
        result = run_serve(
            ServeConfig(
                num_clients=4, num_shards=2, total_ops=1_000,
                num_keys=500, keep_trace=False,
            )
        )
        before = result.fingerprint()
        # With resilience inactive these fields are structurally zero;
        # mutating them must not move the hash (they are not folded).
        result.crashes = 99
        result.shed_by_reason["queue_full"] = 123
        result.breaker_log.append("bogus")
        assert result.fingerprint() == before

    def test_active_runs_fold_resilience_fields(self, default_chaos):
        before = default_chaos.fingerprint()
        default_chaos.crashes += 1
        try:
            assert default_chaos.fingerprint() != before
        finally:
            default_chaos.crashes -= 1


class TestFailover:
    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_chaos_run_is_byte_identical(self, partition):
        a = run_serve(chaos_config(partition=partition))
        b = run_serve(chaos_config(partition=partition))
        assert a.fingerprint() == b.fingerprint()
        assert a.trace_digest == b.trace_digest
        assert a.breaker_log == b.breaker_log
        assert a.degrade_log == b.degrade_log
        assert a.shed_by_reason == b.shed_by_reason

    def test_seeds_diverge(self):
        assert (
            run_serve(chaos_config(seed=11)).fingerprint()
            != run_serve(chaos_config(seed=12)).fingerprint()
        )

    def test_no_acked_write_lost_range(self):
        result = run_serve(chaos_config(partition="range"))
        assert result.crashes == 2
        assert result.promotions == 2
        assert result.acked_writes_checked > 0
        assert result.lost_acked_writes == 0

    def test_no_acked_write_lost_hash(self, default_chaos):
        result = default_chaos
        assert result.crashes == 2
        assert result.promotions == 2
        assert result.acked_writes_checked > 0
        assert result.lost_acked_writes == 0

    def test_conservation_survives_crashes(self, default_chaos):
        result = default_chaos
        assert result.issued == result.completed + result.rejected
        per_tenant = [
            (t.issued, t.completed + t.rejected) for t in result.tenants
        ]
        assert all(issued == accounted for issued, accounted in per_tenant)

    def test_crashed_shards_are_marked_and_timed(self, default_chaos):
        result = default_chaos
        crashed = [s for s in result.shards if s.crashed]
        assert len(crashed) == 2
        for shard in crashed:
            assert shard.promoted
            assert shard.failover_us > 0.0
        survivors = [s for s in result.shards if not s.crashed]
        assert all(not s.promoted for s in survivors)

    def test_breaker_audit_covers_the_failover_arc(self, default_chaos):
        result = default_chaos
        # Every crashed shard's breaker walks crash -> promoted; the log
        # lines carry the shard and the transition.
        for shard in (s for s in result.shards if s.crashed):
            arc = [
                line for line in result.breaker_log
                if f"shard{shard.shard_id} " in line
            ]
            assert any("closed->open crash" in line for line in arc)
            assert any("open->half_open promoted" in line for line in arc)

    def test_scatter_gather_over_dead_shard_is_explicitly_partial(
        self, default_chaos
    ):
        result = default_chaos
        # Hash scans scatter to all shards; while one is down the gather
        # completes partial and is counted (completed, never silent).
        assert result.scans_partial > 0
        assert result.shed_by_reason.get("shard_down", 0) > 0

    def test_degradation_floors_while_down(self, default_chaos):
        result = default_chaos
        # A down shard floors the ladder at L1 (scan shed), so some
        # degradation transitions must appear in the audit.
        assert any("L0->L1" in line for line in result.degrade_log)


class TestDeadlines:
    def test_expired_waits_are_shed_with_reason(self):
        config = chaos_config(crashes=0)
        config.op_deadline_us = 2_000.0  # aggressive: sheds under load
        result = run_serve(config)
        assert result.shed_by_reason.get("deadline", 0) > 0
        assert result.issued == result.completed + result.rejected

    def test_deadline_only_runs_reproduce(self):
        cfg = dict(
            num_clients=4, num_shards=2, total_ops=1_500, num_keys=800,
            queue_depth=16, keep_trace=False, op_deadline_us=3_000.0,
        )
        a = run_serve(ServeConfig(**cfg))
        b = run_serve(ServeConfig(**cfg))
        assert a.fingerprint() == b.fingerprint()


class TestHedgedReads:
    def test_hedges_fire_and_reproduce(self):
        a = run_serve(chaos_config(hedge_quantile=0.9))
        b = run_serve(chaos_config(hedge_quantile=0.9))
        assert a.fingerprint() == b.fingerprint()
        assert a.hedges > 0
        assert 0 <= a.hedge_wins <= a.hedges
        assert a.lost_acked_writes == 0

    def test_hedging_disabled_by_default(self, default_chaos):
        assert default_chaos.hedges == 0


class TestPromotionExactness:
    def test_promoted_replica_serves_exactly_the_primary_state(self):
        """WAL shipping + crash recovery reproduce the primary, bit for bit."""
        def seeded_engine(engine_seed):
            tree = LSMTree(
                LSMOptions(memtable_entries=16, entries_per_sstable=32)
            )
            tree.bulk_load(
                ((key_of(i), value_of(i)) for i in range(200)), seed=7
            )
            return build_engine("adcache", tree, 64 * 1024, seed=engine_seed)

        primary, replica = seeded_engine(1), seeded_engine(2)
        shipped = 0
        for i in range(0, 200, 3):
            primary.put(key_of(i), f"fresh{i:04d}")
            replica.tree.wal.append(key_of(i), f"fresh{i:04d}")
            shipped += 1
        for i in range(0, 200, 7):
            primary.delete(key_of(i))
            replica.tree.wal.append(key_of(i), None)
            shipped += 1
        replayed = replica.crash_and_recover()
        assert replayed == shipped
        for i in range(200):
            assert replica.get(key_of(i)) == primary.get(key_of(i))
        assert replica.scan(key_of(0), 200) == primary.scan(key_of(0), 200)
