"""The tiered fleet end to end: determinism with L2 active, byte-exact
legacy behaviour with it off, budget conservation across the split, and
read-path wiring for both cache-ful and cache-less strategies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve import ServeConfig, run_serve
from repro.serve.simulator import _Simulation

FAST = dict(
    num_clients=4,
    num_shards=2,
    total_ops=1_200,
    num_keys=1_000,
    cache_bytes=128 * 1024,
    window_size=200,
    rebalance_every=400,
    keep_trace=True,
)

TIERED = dict(FAST, l2_budget_bytes=32 * 1024)


def _run(**overrides):
    kwargs = dict(FAST)
    kwargs.update(overrides)
    return run_serve(ServeConfig(**kwargs))


class TestConfig:
    def test_l2_budget_must_fit_inside_cache(self):
        with pytest.raises(ConfigError):
            ServeConfig(**dict(FAST, l2_budget_bytes=FAST["cache_bytes"]))
        with pytest.raises(ConfigError):
            ServeConfig(**dict(FAST, l2_budget_bytes=-1))

    def test_tier2_active_and_pool(self):
        config = ServeConfig(**TIERED)
        assert config.tier2_active
        assert config.l1_pool_bytes == 96 * 1024
        flat = ServeConfig(**FAST)
        assert not flat.tier2_active
        assert flat.l1_pool_bytes == flat.cache_bytes


class TestDeterminism:
    def test_double_run_fingerprints_match_with_l2(self):
        a = _run(l2_budget_bytes=TIERED["l2_budget_bytes"])
        b = _run(l2_budget_bytes=TIERED["l2_budget_bytes"])
        assert a.fingerprint() == b.fingerprint()
        assert a.l2_probes > 0 and a.l2_demotions > 0

    def test_l2_budget_changes_the_run(self):
        flat = _run()
        tiered = _run(l2_budget_bytes=32 * 1024)
        assert flat.fingerprint() != tiered.fingerprint()

    def test_disabled_tier_is_byte_identical_legacy(self):
        # The tiered machinery at budget 0 must not perturb a legacy
        # run in any observable way: same trace, same fingerprint.
        legacy = _run()
        explicit = _run(l2_budget_bytes=0)
        assert legacy.trace == explicit.trace
        assert legacy.fingerprint() == explicit.fingerprint()
        assert explicit.l2_probes == 0 and explicit.l2_budget_bytes == 0

    def test_tiered_batched_run_is_deterministic(self):
        a = _run(l2_budget_bytes=32 * 1024, batch_size=4)
        b = _run(l2_budget_bytes=32 * 1024, batch_size=4)
        assert a.fingerprint() == b.fingerprint()


class TestBudgetConservation:
    def test_l1_plus_l2_equals_total_after_rebalances(self):
        sim = _Simulation(ServeConfig(**TIERED))
        result = sim.run()
        assert result.rebalances > 0
        assert sim.tier2 is not None
        engines = sum(s.engine.cache_budget_total for s in sim.shards)
        assert engines + sim.tier2.budget_bytes == TIERED["cache_bytes"]
        assert sim.tier2.used_bytes <= sim.tier2.budget_bytes
        sim.tier2.check_invariants()
        if sim.arbiter is not None:
            sim.arbiter.check_invariants()

    def test_arbiter_moves_the_boundary_within_clamps(self):
        result = _run(
            l2_budget_bytes=32 * 1024, total_ops=2_400, rebalance_every=300
        )
        assert result.rebalances >= 2
        assert len(result.l2_log) == result.rebalances
        assert 0.0 < result.l2_share_final < 1.0

    def test_conservation_holds_without_arbiter(self):
        result = _run(l2_budget_bytes=32 * 1024, rebalance_every=0)
        assert result.rebalances == 0
        # Fixed carve-out: shards hold the pool, L2 keeps its grant.
        shard_budgets = sum(s.budget_bytes for s in result.shards)
        assert shard_budgets == FAST["cache_bytes"] - 32 * 1024
        assert result.l2_budget_bytes == 32 * 1024


class TestWiring:
    def test_block_strategy_demotes_through_l1_evictions(self):
        result = _run(l2_budget_bytes=32 * 1024, strategy="block")
        # L1 evictions feed L2 demotions; some survive the filter.
        assert result.l2_demotions > 0
        assert result.l2_admits + result.l2_rejects == result.l2_demotions

    def test_range_strategy_without_block_cache_admits_on_fill(self):
        # range-lecar engines have no block cache: the client sits as
        # the tree's block fetch and admits on demand-fill instead.
        result = _run(l2_budget_bytes=32 * 1024, strategy="range-lecar")
        assert result.l2_probes > 0
        assert result.l2_demotions > 0

    def test_l2_hits_reduce_fleet_disk_reads(self):
        # Deterministic fixture: at this seed the shared tier converts
        # enough cross-shard reuse into L2 hits to beat the flat fleet
        # at the same total byte budget.
        flat = _run(total_ops=3_000)
        tiered = _run(total_ops=3_000, l2_budget_bytes=32 * 1024)
        assert tiered.l2_hits > 0
        flat_io = sum(s.disk_reads for s in flat.shards)
        tiered_io = sum(s.disk_reads for s in tiered.shards)
        assert tiered_io < flat_io

    def test_report_renders_tier2_section(self):
        result = _run(l2_budget_bytes=32 * 1024)
        text = result.format_report()
        assert "tier2:" in text and "ghost_hits=" in text
        flat_text = _run().format_report()
        assert "tier2:" not in flat_text


class TestObs:
    def test_tiered_obs_export_validates(self, tmp_path):
        from repro.obs.schema import validate_export

        result = _run(l2_budget_bytes=32 * 1024, obs=True)
        out = tmp_path / "obs"
        result.export_obs(str(out))
        problems = validate_export(str(out))
        assert problems == []

    def test_l2_counters_flow_into_fleet_windows(self):
        from repro.obs import names as N

        result = _run(l2_budget_bytes=32 * 1024, obs=True)
        totals = {}
        for window in result.obs_fleet_windows:
            for name, value in window.counters.items():
                totals[name] = totals.get(name, 0) + value
        assert totals.get(N.L2_DEMOTIONS, 0) == result.l2_demotions
        assert totals.get(N.L2_HITS, 0) == result.l2_hits
        assert totals.get(N.L2_ADMITS, 0) == result.l2_admits
