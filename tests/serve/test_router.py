"""Shard router: partitioning, planning, and scatter-gather vs an oracle."""

from __future__ import annotations

import pytest

from repro.bench.harness import apply_operation, seed_database
from repro.core.engine import KVEngine
from repro.errors import ConfigError
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.serve.router import ShardRouter, fnv1a_64
from repro.workloads.generator import Operation, WorkloadGenerator, WorkloadSpec
from repro.workloads.keys import key_of, value_of

NUM_KEYS = 600


def _options():
    return LSMOptions(memtable_entries=32, entries_per_sstable=64)


def _build_sharded(router):
    """One plain engine per shard, seeded with that shard's keys."""
    engines = []
    for ids in router.shard_ids():
        tree = LSMTree(_options())
        tree.bulk_load(((key_of(i), value_of(i)) for i in ids), seed=7)
        engines.append(KVEngine(tree))
    return engines


class TestPartitioning:
    def test_fnv1a_is_stable(self):
        # Known-answer: FNV-1a 64 of the empty string is the offset basis.
        assert fnv1a_64("") == 0xCBF29CE484222325
        assert fnv1a_64("a") == 0xAF63DC4C8601EC8C

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            ShardRouter(0, 100)
        with pytest.raises(ConfigError):
            ShardRouter(2, 0)
        with pytest.raises(ConfigError):
            ShardRouter(2, 100, partition="round-robin")

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_shard_ids_partition_the_keyspace(self, partition):
        router = ShardRouter(4, NUM_KEYS, partition)
        ids = router.shard_ids()
        flat = sorted(i for shard in ids for i in shard)
        assert flat == list(range(NUM_KEYS))
        assert all(shard == sorted(shard) for shard in ids)
        if partition == "range":
            # Contiguous slices in shard order.
            assert [shard[0] for shard in ids] == [0, 150, 300, 450]

    def test_shard_of_key_matches_shard_ids(self):
        for partition in ("hash", "range"):
            router = ShardRouter(3, NUM_KEYS, partition)
            for shard, ids in enumerate(router.shard_ids()):
                for key_id in ids[:25]:
                    assert router.shard_of_key(key_of(key_id)) == shard
                    assert router.shard_of_id(key_id) == shard

    def test_range_mode_balance(self):
        router = ShardRouter(4, NUM_KEYS, "range")
        sizes = [len(ids) for ids in router.shard_ids()]
        assert sizes == [150, 150, 150, 150]


class TestPlanning:
    def test_point_ops_route_to_one_shard(self):
        for partition in ("hash", "range"):
            router = ShardRouter(4, NUM_KEYS, partition)
            for kind in ("get", "put", "delete"):
                op = Operation(kind, key_of(123), value="v")
                plan = router.plan(op)
                assert len(plan) == 1
                assert plan[0] == (router.shard_of_key(op.key), op)

    def test_hash_scans_scatter_everywhere(self):
        router = ShardRouter(4, NUM_KEYS, "hash")
        op = Operation("scan", key_of(10), length=16)
        plan = router.plan(op)
        assert [shard for shard, _ in plan] == [0, 1, 2, 3]
        assert all(sub == op for _, sub in plan)

    def test_range_scans_touch_only_overlapping_shards(self):
        router = ShardRouter(4, NUM_KEYS, "range")
        # Fully inside shard 0 ([0, 150)).
        plan = router.plan(Operation("scan", key_of(10), length=16))
        assert [shard for shard, _ in plan] == [0]
        # Straddles the shard 0/1 boundary at 150.
        plan = router.plan(Operation("scan", key_of(145), length=16))
        assert [shard for shard, _ in plan] == [0, 1]
        # The second sub-scan starts at the boundary key, not before it.
        assert plan[1][1].key == key_of(150)

    def test_merge_scan_truncates_and_orders(self):
        router = ShardRouter(2, NUM_KEYS, "hash")
        parts = [
            [(key_of(1), "a"), (key_of(5), "b")],
            [(key_of(2), "c"), (key_of(9), "d")],
        ]
        merged = router.merge_scan(parts, 3)
        assert [k for k, _ in merged] == [key_of(1), key_of(2), key_of(5)]


class TestScatterGatherOracle:
    """Sharded scan results must equal an unsharded engine's scans."""

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_scans_match_unsharded_oracle(self, partition):
        spec = WorkloadSpec(
            num_keys=NUM_KEYS,
            get_ratio=0.2,
            short_scan_ratio=0.5,
            write_ratio=0.3,
            short_scan_length=24,
            name="oracle-mix",
        )
        router = ShardRouter(3, NUM_KEYS, partition)
        engines = _build_sharded(router)
        oracle = KVEngine(seed_database(NUM_KEYS, _options(), seed=7))
        generator = WorkloadGenerator(spec, seed=42)
        scans_checked = 0
        for op in generator.ops(400):
            if op.kind == "scan":
                parts = [
                    router.execute(engines[shard], sub_op)
                    for shard, sub_op in router.plan(op)
                ]
                merged = router.merge_scan(parts, op.length)
                expected = oracle.scan(op.key, op.length)
                assert merged == expected, f"scan {op.key} x{op.length} diverged"
                scans_checked += 1
            else:
                for shard, sub_op in router.plan(op):
                    router.execute(engines[shard], sub_op)
                apply_operation(oracle, op)
        assert scans_checked > 50  # the mix actually exercised scans

    def test_scan_at_keyspace_tail(self):
        router = ShardRouter(3, NUM_KEYS, "range")
        engines = _build_sharded(router)
        oracle = KVEngine(seed_database(NUM_KEYS, _options(), seed=7))
        op = Operation("scan", key_of(NUM_KEYS - 5), length=16)
        parts = [
            router.execute(engines[shard], sub_op)
            for shard, sub_op in router.plan(op)
        ]
        merged = router.merge_scan(parts, op.length)
        assert merged == oracle.scan(op.key, op.length)
        assert len(merged) == 5  # keyspace exhausted, not padded


class TestHealthAwarePlanning:
    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_empty_unavailable_set_is_the_full_plan(self, partition):
        router = ShardRouter(4, 100, partition)
        op = Operation("scan", key_of(10), length=20)
        live, dropped = router.plan_healthy(op, frozenset())
        assert live == router.plan(op)
        assert dropped == []

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_point_op_with_dead_owner_fails_fast(self, partition):
        router = ShardRouter(4, 100, partition)
        op = Operation("get", key_of(42))
        owner = router.shard_of_key(op.key)
        live, dropped = router.plan_healthy(op, {owner})
        assert live == []
        assert dropped == [owner]

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_point_op_with_other_shard_dead_is_unaffected(self, partition):
        router = ShardRouter(4, 100, partition)
        op = Operation("get", key_of(42))
        owner = router.shard_of_key(op.key)
        dead = (owner + 1) % 4
        live, dropped = router.plan_healthy(op, {dead})
        assert live == [(owner, op)]
        assert dropped == []

    def test_hash_scan_drops_exactly_the_dead_shards(self):
        router = ShardRouter(4, 100, "hash")
        op = Operation("scan", key_of(0), length=50)
        live, dropped = router.plan_healthy(op, {1, 3})
        assert [shard for shard, _ in live] == [0, 2]
        assert dropped == [1, 3]

    def test_range_scan_drops_only_overlapping_dead_shards(self):
        router = ShardRouter(4, 100, "range")
        # Keys 10..29 live on shards 0 (0-24) and 1 (25-49).
        op = Operation("scan", key_of(10), length=20)
        full = [shard for shard, _ in router.plan(op)]
        assert full == [0, 1]
        live, dropped = router.plan_healthy(op, {1, 3})
        assert [shard for shard, _ in live] == [0]
        assert dropped == [1]

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_retargeting_is_deterministic(self, partition):
        """Identical health histories re-target identically (both modes)."""
        router = ShardRouter(4, 200, partition)
        generator = WorkloadGenerator(
            WorkloadSpec(
                num_keys=200, get_ratio=0.5, short_scan_ratio=0.3,
                write_ratio=0.15, delete_ratio=0.05, name="mix",
            ),
            seed=77,
        )
        ops = list(generator.ops(300))
        unavailable = {2}
        first = [router.plan_healthy(op, unavailable) for op in ops]
        second = [router.plan_healthy(op, unavailable) for op in ops]
        assert first == second
        assert all(
            shard != 2 for live, _ in first for shard, _ in live
        )


def _batch_mix(count, seed=21):
    spec = WorkloadSpec(
        num_keys=NUM_KEYS,
        get_ratio=0.5,
        short_scan_ratio=0.25,
        write_ratio=0.2,
        delete_ratio=0.05,
        short_scan_length=16,
        name="batch-mix",
    )
    return list(WorkloadGenerator(spec, seed=seed).ops(count))


class TestBatchSplitting:
    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_split_union_equals_per_op_plans(self, partition):
        """Flattening the per-shard split recovers exactly the per-op plans."""
        router = ShardRouter(3, NUM_KEYS, partition)
        ops = _batch_mix(80)
        split = router.split_batch(ops)
        got = sorted(
            (index, shard, sub.kind, sub.key, sub.length)
            for shard, pairs in split.items()
            for index, sub in pairs
        )
        expected = sorted(
            (index, shard, sub.kind, sub.key, sub.length)
            for index, op in enumerate(ops)
            for shard, sub in router.plan(op)
        )
        assert got == expected

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_per_shard_sub_batches_preserve_arrival_order(self, partition):
        router = ShardRouter(4, NUM_KEYS, partition)
        split = router.split_batch(_batch_mix(80))
        for pairs in split.values():
            indices = [index for index, _ in pairs]
            assert indices == sorted(indices)

    def test_empty_batch_splits_to_nothing(self):
        assert ShardRouter(3, NUM_KEYS).split_batch([]) == {}


class TestBatchedFleetOracle:
    """split_batch + execute_batch must be equivalent to replaying the
    same batch op-by-op through a scalar fleet: identical scan gathers
    and identical final shard state (per-shard batched runs may save
    metered reads, never change answers)."""

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_batched_fleet_matches_scalar_replay(self, partition):
        router = ShardRouter(3, NUM_KEYS, partition)
        batched_fleet = _build_sharded(router)
        scalar_fleet = _build_sharded(router)
        ops = _batch_mix(240)
        scans_checked = 0
        for chunk in range(0, len(ops), 12):
            batch = ops[chunk : chunk + 12]
            # Batched fleet: one execute_batch per shard sub-batch.
            parts_by_index = {}
            for shard in sorted(router.split_batch(batch)):
                pairs = router.split_batch(batch)[shard]
                outs = ShardRouter.execute_batch(
                    batched_fleet[shard], [sub for _, sub in pairs]
                )
                for (index, _), entries in zip(pairs, outs):
                    parts_by_index.setdefault(index, {})[shard] = entries
            # Scalar fleet: per-op plan + execute, then compare gathers.
            for index, op in enumerate(batch):
                plan = router.plan(op)
                parts = [
                    router.execute(scalar_fleet[shard], sub)
                    for shard, sub in plan
                ]
                if op.kind != "scan":
                    continue
                expected = router.merge_scan(parts, op.length)
                got = router.merge_scan(
                    [parts_by_index[index][shard] for shard, _ in plan],
                    op.length,
                )
                assert got == expected, f"scan {op.key} diverged"
                scans_checked += 1
        assert scans_checked > 30
        # Final state parity: every probed key agrees shard-by-shard.
        for key_id in range(0, NUM_KEYS, 7):
            key = key_of(key_id)
            shard = router.shard_of_key(key)
            assert batched_fleet[shard].get(key) == scalar_fleet[shard].get(key)
        # Coalescing may only ever save metered reads, never add them.
        assert sum(
            e.tree.disk.block_reads_total for e in batched_fleet
        ) <= sum(e.tree.disk.block_reads_total for e in scalar_fleet)

    def test_batched_run_observes_earlier_writes_in_same_batch(self):
        router = ShardRouter(1, NUM_KEYS)
        engine = _build_sharded(router)[0]
        key = key_of(5)
        ops = [
            Operation("put", key, value="updated"),
            Operation("get", key),
            Operation("scan", key, length=1),
        ]
        outs = ShardRouter.execute_batch(engine, ops)
        assert outs[2] == [(key, "updated")]
        assert engine.get(key) == "updated"
