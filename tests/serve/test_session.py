"""Client sessions: op streams, timing draws, and config validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.session import ClientSession, TenantConfig
from repro.workloads.generator import WorkloadGenerator, balanced_workload


def _session(mode="open", ops=50, seed=1, **kw):
    config = TenantConfig(name="t0", ops=ops, mode=mode, **kw)
    generator = WorkloadGenerator(balanced_workload(500), seed=seed)
    return ClientSession(config, generator, seed=seed)


class TestTenantConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TenantConfig(name="x", ops=0)
        with pytest.raises(ConfigError):
            TenantConfig(name="x", ops=1, mode="half-open")
        with pytest.raises(ConfigError):
            TenantConfig(name="x", ops=1, mode="open", arrival_rate_ops_s=0)
        with pytest.raises(ConfigError):
            TenantConfig(name="x", ops=1, mode="closed", think_time_us=-1)


class TestSession:
    def test_stream_yields_exactly_ops(self):
        session = _session(ops=25)
        count = 0
        while session.next_operation() is not None:
            count += 1
        assert count == 25
        assert session.issued == 25
        assert session.next_operation() is None

    def test_open_loop_interarrivals_match_rate(self):
        session = _session(mode="open", ops=1, arrival_rate_ops_s=1000.0)
        draws = [session.next_delay_us() for _ in range(4000)]
        assert all(d >= 0 for d in draws)
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(1000.0, rel=0.1)  # 1/rate = 1000 us

    def test_closed_loop_think_time(self):
        session = _session(mode="closed", ops=1, think_time_us=500.0)
        draws = [session.next_delay_us() for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(500.0, rel=0.1)

    def test_zero_think_time_is_zero(self):
        session = _session(mode="closed", ops=1, think_time_us=0.0)
        assert session.next_delay_us() == 0.0

    def test_same_seed_same_draws(self):
        a = _session(seed=9)
        b = _session(seed=9)
        assert [a.next_delay_us() for _ in range(10)] == [
            b.next_delay_us() for _ in range(10)
        ]
        assert [a.next_operation() for _ in range(10)] == [
            b.next_operation() for _ in range(10)
        ]
