"""End-to-end serving simulation: conservation, shedding, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve import ServeConfig, run_serve

FAST = dict(
    num_clients=4,
    num_shards=2,
    total_ops=1_200,
    num_keys=1_000,
    cache_bytes=128 * 1024,
    window_size=200,
    rebalance_every=400,
    keep_trace=True,
)


def _run(**overrides):
    kwargs = dict(FAST)
    kwargs.update(overrides)
    return run_serve(ServeConfig(**kwargs))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ServeConfig(num_clients=0)
        with pytest.raises(ConfigError):
            ServeConfig(num_shards=0)
        with pytest.raises(ConfigError):
            ServeConfig(num_clients=8, total_ops=4)
        with pytest.raises(ConfigError):
            ServeConfig(closed_clients=99)
        with pytest.raises(ConfigError):
            ServeConfig(window_size=0)


class TestConservation:
    def test_every_issued_request_is_accounted(self):
        result = _run(seed=0)
        assert result.issued == FAST["total_ops"]
        assert result.completed + result.rejected == result.issued
        for tenant in result.tenants:
            assert tenant.completed + tenant.rejected == tenant.issued
            assert tenant.latency.count == tenant.completed
        assert result.latency.count == result.completed
        assert sum(t.issued for t in result.tenants) == result.issued

    def test_subrequest_flow_matches_queue_stats(self):
        result = _run(seed=1)
        served = sum(s.subrequests_served for s in result.shards)
        # Every admitted sub-request was eventually served (queues drain).
        assert result.queue_wait.count == served
        assert served >= result.completed  # scans fan out

    def test_simulated_time_and_throughput(self):
        result = _run(seed=2)
        assert result.duration_us > 0
        assert result.throughput_qps == pytest.approx(
            result.completed / (result.duration_us / 1e6)
        )


class TestLoadShedding:
    def test_tiny_queues_shed_and_account(self):
        result = _run(seed=3, queue_depth=2, arrival_rate_ops_s=20_000.0)
        assert result.rejected > 0
        assert sum(t.rejected for t in result.tenants) == result.rejected
        # Sheds are also visible at the full queues themselves.
        assert sum(s.rejected_at for s in result.shards) >= result.rejected
        assert any("shed" in line for line in result.trace)

    def test_deep_queues_admit_everything(self):
        result = _run(
            seed=4,
            queue_depth=100_000,
            arrival_rate_ops_s=500.0,
            rebalance_every=0,
        )
        assert result.rejected == 0
        assert result.completed == result.issued


class TestModes:
    def test_closed_loop_clients_complete_their_ops(self):
        result = _run(seed=5, closed_clients=4, arrival_rate_ops_s=500.0)
        closed = [t for t in result.tenants if t.mode == "closed"]
        assert len(closed) == 4
        # One request in flight at a time: a closed client can only be
        # shed when open-loop traffic fills the queues — here there is
        # none, so every op completes.
        assert all(t.rejected == 0 for t in closed)
        assert all(t.completed == t.issued for t in closed)

    def test_mixed_modes(self):
        result = _run(seed=6, closed_clients=2)
        modes = [t.mode for t in result.tenants]
        assert modes == ["open", "open", "closed", "closed"]

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_partition_modes_run(self, partition):
        result = _run(seed=7, partition=partition, total_ops=600)
        assert result.completed > 0


class TestArbiter:
    def test_rebalances_fire_and_budgets_sum(self):
        result = _run(seed=8)
        assert result.rebalances >= 1
        assert (
            sum(s.budget_bytes for s in result.shards)
            == FAST["cache_bytes"]
        )
        assert any("rebalance" in line for line in result.trace)

    def test_rebalancing_disabled(self):
        result = _run(seed=9, rebalance_every=0)
        assert result.rebalances == 0


class TestDeterminism:
    def test_fingerprint_reproduces(self):
        a = _run(seed=10)
        b = _run(seed=10)
        assert a.trace == b.trace
        assert a.fingerprint() == b.fingerprint()

    def test_seeds_diverge(self):
        assert _run(seed=11).fingerprint() != _run(seed=12).fingerprint()

    def test_report_is_stable_text(self):
        a = _run(seed=13)
        b = _run(seed=13)
        assert a.format_report() == b.format_report()
        assert "per-tenant" in a.format_report()


class TestStrategies:
    def test_block_strategy_serves(self):
        result = _run(seed=14, strategy="block", total_ops=600)
        assert result.completed > 0
        assert result.fleet_window.io_miss > 0

    def test_fleet_window_aggregates_all_shards(self):
        result = _run(seed=15, total_ops=600)
        assert result.fleet_window.ops == sum(
            s.subrequests_served for s in result.shards
        )


class TestBatchedServing:
    def test_batched_run_is_deterministic(self):
        a = _run(seed=31, batch_size=4)
        b = _run(seed=31, batch_size=4)
        assert a.fingerprint() == b.fingerprint()
        assert a.shed_by_reason == b.shed_by_reason

    def test_batch_of_one_matches_default_config(self):
        # batch_size=1 takes the scalar dispatch path; explicitly passing
        # it must not perturb the simulation in any observable way.
        assert (
            _run(seed=32, batch_size=1).fingerprint()
            == _run(seed=32).fingerprint()
        )

    def test_batched_conservation_holds(self):
        result = _run(seed=33, batch_size=4)
        assert result.issued == FAST["total_ops"]
        assert result.completed + result.rejected == result.issued
        served = sum(s.subrequests_served for s in result.shards)
        assert result.queue_wait.count == served

    def test_batched_sheds_under_deadline_pressure_account_and_repeat(self):
        kwargs = dict(
            seed=34,
            batch_size=4,
            queue_depth=2,
            arrival_rate_ops_s=20_000.0,
            op_deadline_us=300.0,
        )
        result = _run(**kwargs)
        assert result.rejected > 0
        assert result.completed + result.rejected == result.issued
        assert result.shed_by_reason.get("queue_full", 0) > 0
        assert result.shed_by_reason.get("deadline", 0) > 0
        again = _run(**kwargs)
        assert again.fingerprint() == result.fingerprint()
        assert again.shed_by_reason == result.shed_by_reason
