"""Event loop: deterministic ordering over simulated microseconds."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.events import EventLoop


class TestScheduling:
    def test_events_dispatch_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.at(30.0, lambda: order.append("c"))
        loop.at(10.0, lambda: order.append("a"))
        loop.at(20.0, lambda: order.append("b"))
        assert loop.run() == 3
        assert order == ["a", "b", "c"]
        assert loop.now == 30.0

    def test_ties_break_by_schedule_order(self):
        loop = EventLoop()
        order = []
        for tag in ("first", "second", "third"):
            loop.at(5.0, (lambda t: lambda: order.append(t))(tag))
        loop.run()
        assert order == ["first", "second", "third"]

    def test_after_is_relative_to_now(self):
        loop = EventLoop()
        times = []
        loop.at(100.0, lambda: loop.after(50.0, lambda: times.append(loop.now)))
        loop.run()
        assert times == [150.0]

    def test_scheduling_into_the_past_rejected(self):
        loop = EventLoop()
        loop.at(100.0, lambda: None)
        loop.step()
        with pytest.raises(ConfigError):
            loop.at(50.0, lambda: None)
        with pytest.raises(ConfigError):
            loop.after(-1.0, lambda: None)

    def test_step_and_pending(self):
        loop = EventLoop()
        assert loop.step() is False
        loop.at(1.0, lambda: None)
        loop.at(2.0, lambda: None)
        assert loop.pending == 2
        assert loop.step() is True
        assert loop.pending == 1
        assert loop.events_dispatched == 1

    def test_run_with_max_events(self):
        loop = EventLoop()
        hits = []
        for i in range(5):
            loop.at(float(i), (lambda j: lambda: hits.append(j))(i))
        assert loop.run(max_events=2) == 2
        assert hits == [0, 1]
        assert loop.run() == 3

    def test_events_scheduled_during_dispatch_run(self):
        loop = EventLoop()
        chain = []

        def first():
            chain.append(1)
            loop.after(0.0, lambda: chain.append(2))

        loop.at(10.0, first)
        loop.run()
        assert chain == [1, 2]
        assert loop.now == 10.0


class TestCancellableTimers:
    def test_timer_fires_when_not_cancelled(self):
        from repro.serve.events import EventLoop as _Loop

        loop = _Loop()
        fired = []
        timer = loop.after_cancellable(10.0, lambda: fired.append(loop.now))
        loop.run()
        assert fired == [10.0]
        assert timer.fired and not timer.cancelled

    def test_cancelled_timer_is_a_no_op(self):
        loop = EventLoop()
        fired = []
        timer = loop.after_cancellable(10.0, lambda: fired.append(1))
        timer.cancel()
        loop.run()
        assert fired == []
        assert timer.fired  # the heap entry still dispatched

    def test_cancellation_preserves_dispatch_order(self):
        # Lazy cancellation must not perturb the heap: other events at
        # the same timestamps dispatch in unchanged order.
        def trace(cancel_second):
            loop = EventLoop()
            order = []
            loop.at(5.0, lambda: order.append("a"))
            timer = loop.after_cancellable(5.0, lambda: order.append("x"))
            loop.at(5.0, lambda: order.append("b"))
            if cancel_second:
                timer.cancel()
            loop.run()
            return order

        assert trace(cancel_second=False) == ["a", "x", "b"]
        assert trace(cancel_second=True) == ["a", "b"]
