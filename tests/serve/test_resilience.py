"""Circuit breakers and the degradation ladder: deterministic state machines."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.resilience import (
    CLOSED,
    HALF_OPEN,
    LEVEL_NORMAL,
    LEVEL_OWNERS_ONLY,
    LEVEL_SHED_COLD_READS,
    LEVEL_SHED_SCANS,
    OPEN,
    CircuitBreaker,
    DegradationLadder,
    ResilienceConfig,
)


def config(**overrides) -> ResilienceConfig:
    defaults = dict(
        breaker_window=8,
        breaker_failure_threshold=0.5,
        breaker_min_samples=4,
        breaker_open_us=1_000.0,
        breaker_half_open_probes=2,
        degrade_enter_frac=0.75,
        degrade_exit_frac=0.40,
        degrade_dwell_us=100.0,
    )
    defaults.update(overrides)
    return ResilienceConfig(**defaults)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        ResilienceConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"breaker_window": 0},
            {"breaker_failure_threshold": 0.0},
            {"breaker_failure_threshold": 1.5},
            {"breaker_min_samples": 0},
            {"breaker_open_us": -1.0},
            {"breaker_half_open_probes": 0},
            {"op_timeout_us": -1.0},
            {"hedge_quantile": 1.0},
            {"hedge_quantile": -0.1},
            {"hedge_floor_us": -1.0},
            {"hedge_min_samples": 0},
            {"degrade_enter_frac": 0.0},
            {"degrade_exit_frac": 0.9, "degrade_enter_frac": 0.8},
            {"degrade_dwell_us": -1.0},
            {"owner_tenants": -1},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ResilienceConfig(**kwargs)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker(0, config())
        assert b.state == CLOSED
        assert b.allow(0.0)
        assert b.refusals == 0

    def test_failure_rate_trips_open(self):
        b = CircuitBreaker(0, config())
        for t in range(4):
            b.record_failure(float(t))
        assert b.state == OPEN
        assert not b.allow(4.0)
        assert b.refusals == 1
        b.check_invariants()

    def test_needs_min_samples_before_tripping(self):
        b = CircuitBreaker(0, config(breaker_min_samples=6))
        for t in range(5):
            b.record_failure(float(t))
        assert b.state == CLOSED

    def test_successes_keep_it_closed(self):
        b = CircuitBreaker(0, config())
        for t in range(20):
            b.record_success(float(t))
            b.record_failure(float(t) + 0.5)
        # 50% failures meets the threshold eventually; flip the mix:
        b2 = CircuitBreaker(1, config(breaker_failure_threshold=0.9))
        for t in range(20):
            b2.record_success(float(t))
            b2.record_failure(float(t) + 0.5)
        assert b2.state == CLOSED

    def test_cooldown_half_opens(self):
        b = CircuitBreaker(0, config())
        b.force_open(10.0, "crash")
        assert b.state == OPEN
        assert not b.allow(500.0)
        assert b.allow(1_010.0)  # past the 1000us cooldown
        assert b.state == HALF_OPEN
        b.check_invariants()

    def test_half_open_probes_close(self):
        b = CircuitBreaker(0, config())
        b.force_open(0.0, "crash")
        b.record_success(1_001.0)  # ticks open -> half_open, probe 1
        assert b.state == HALF_OPEN
        b.record_success(1_002.0)  # probe 2 of 2
        assert b.state == CLOSED
        assert [t[3] for t in b.transitions] == [
            "crash", "cooldown", "probes_passed",
        ]
        b.check_invariants()

    def test_half_open_probe_failure_reopens(self):
        b = CircuitBreaker(0, config())
        b.force_open(0.0, "crash")
        b.half_open(500.0, "promoted")
        b.record_failure(1_001.0, "timeout")
        assert b.state == OPEN
        assert b.transitions[-1][3] == "probe_timeout"
        b.check_invariants()

    def test_force_open_while_open_extends_cooldown(self):
        b = CircuitBreaker(0, config())
        b.force_open(0.0, "crash")
        b.force_open(900.0, "crash")
        assert not b.allow(1_500.0)  # cooldown re-anchored at 900
        assert b.allow(1_901.0)

    def test_transition_log_is_deterministic(self):
        def drive(b):
            for t in range(4):
                b.record_failure(float(t))
            b.record_success(1_500.0)
            b.record_success(1_501.0)
            return b.transitions

        assert drive(CircuitBreaker(0, config())) == drive(
            CircuitBreaker(0, config())
        )


class TestDegradationLadder:
    def test_starts_normal_and_admits_everything(self):
        ladder = DegradationLadder(config())
        assert ladder.level == LEVEL_NORMAL
        assert ladder.admits("scan", owner=False, resident=False) is None
        assert ladder.admits("get", owner=False, resident=False) is None

    def test_pressure_steps_up_one_level_at_a_time(self):
        ladder = DegradationLadder(config())
        ladder.observe(0.9, False, 0.0)
        assert ladder.level == LEVEL_SHED_SCANS
        ladder.observe(0.9, False, 50.0)  # within dwell: no move
        assert ladder.level == LEVEL_SHED_SCANS
        ladder.observe(0.9, False, 200.0)
        assert ladder.level == LEVEL_SHED_COLD_READS
        ladder.observe(0.9, False, 400.0)
        assert ladder.level == LEVEL_OWNERS_ONLY
        ladder.observe(0.9, False, 600.0)  # already at max
        assert ladder.level == LEVEL_OWNERS_ONLY
        ladder.check_invariants()

    def test_hysteresis_band_holds_level(self):
        ladder = DegradationLadder(config())
        ladder.observe(0.9, False, 0.0)
        ladder.observe(0.55, False, 500.0)  # between exit and enter
        assert ladder.level == LEVEL_SHED_SCANS
        ladder.observe(0.2, False, 1_000.0)
        assert ladder.level == LEVEL_NORMAL

    def test_down_shard_floors_at_scan_shed(self):
        ladder = DegradationLadder(config())
        ladder.observe(0.0, True, 0.0)
        assert ladder.level == LEVEL_SHED_SCANS
        # Pressure is zero but the floor holds while the shard is down.
        ladder.observe(0.0, True, 1_000.0)
        assert ladder.level == LEVEL_SHED_SCANS
        ladder.observe(0.0, False, 2_000.0)
        assert ladder.level == LEVEL_NORMAL

    def test_admits_sheds_scans_at_l1(self):
        ladder = DegradationLadder(config())
        ladder.observe(0.9, False, 0.0)
        assert ladder.admits("scan", False, True) == "degraded_scan"
        assert ladder.admits("get", False, True) is None
        assert ladder.shed_scans == 1

    def test_admits_sheds_cold_reads_at_l2(self):
        ladder = DegradationLadder(config())
        ladder.observe(0.9, False, 0.0)
        ladder.observe(0.9, False, 200.0)
        assert ladder.level == LEVEL_SHED_COLD_READS
        assert ladder.admits("get", False, False) == "degraded_cold_read"
        assert ladder.admits("get", False, True) is None
        assert ladder.admits("put", False, False) is None

    def test_l3_keeps_only_owner_traffic(self):
        ladder = DegradationLadder(config())
        for t in (0.0, 200.0, 400.0):
            ladder.observe(0.9, False, t)
        assert ladder.level == LEVEL_OWNERS_ONLY
        assert ladder.admits("get", owner=False, resident=True) == (
            "degraded_non_owner"
        )
        # Owners are capped at L1 severity: points flow, scans shed.
        assert ladder.admits("get", owner=True, resident=False) is None
        assert ladder.admits("scan", owner=True, resident=True) == (
            "degraded_scan"
        )

    def test_transitions_log_chains(self):
        ladder = DegradationLadder(config())
        for t in (0.0, 200.0, 400.0):
            ladder.observe(0.9, False, t)
        for t in (600.0, 800.0, 1_000.0):
            ladder.observe(0.1, False, t)
        assert [(s, d) for _, s, d, _ in ladder.transitions] == [
            (0, 1), (1, 2), (2, 3), (3, 2), (2, 1), (1, 0),
        ]
        ladder.check_invariants()
