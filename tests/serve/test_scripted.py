"""Scenario-scripted serving runs: phases, conservation, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve import ScriptedSession, ServeConfig, TenantConfig, run_serve
from repro.serve.session import PhaseSlot
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.scenarios import (
    ScenarioParams,
    build_scenario,
    scenario_names,
)

TINY = ScenarioParams(
    num_keys=600, tenants=2, phase_ops=80, arrival_rate_ops_s=4000.0, seed=5
)


def _run(name, **overrides):
    kwargs = dict(
        schedule=build_scenario(name, TINY),
        num_shards=2,
        seed=9,
        cache_bytes=64 * 1024,
        window_size=100,
        rebalance_every=300,
        keep_trace=True,
    )
    kwargs.update(overrides)
    return run_serve(ServeConfig(**kwargs))


class TestConfigAdoption:
    def test_schedule_defines_population_and_budget(self):
        schedule = build_scenario("diurnal", TINY)
        config = ServeConfig(schedule=schedule, num_shards=2)
        assert config.num_clients == len(schedule.tenant_names)
        assert config.total_ops == schedule.total_ops
        assert config.num_keys == schedule.num_keys
        assert config.arrival_rate_ops_s == schedule.arrival_rate_ops_s

    def test_workload_and_schedule_exclusive(self):
        schedule = build_scenario("diurnal", TINY)
        spec = WorkloadSpec(num_keys=100, get_ratio=1.0)
        with pytest.raises(ConfigError, match="mutually exclusive"):
            ServeConfig(schedule=schedule, workload=spec)

    def test_closed_clients_rejected(self):
        schedule = build_scenario("diurnal", TINY)
        with pytest.raises(ConfigError, match="open-loop only"):
            ServeConfig(schedule=schedule, closed_clients=1)


class TestScriptedRuns:
    @pytest.mark.parametrize("name", scenario_names())
    def test_deterministic_per_scenario(self, name):
        a = _run(name, keep_trace=False)
        b = _run(name, keep_trace=False)
        assert a.fingerprint() == b.fingerprint()

    def test_conservation_and_budget_drain(self):
        result = _run("flash_crowd")
        schedule = build_scenario("flash_crowd", TINY)
        assert result.issued == result.completed + result.rejected
        # The whole budget enters the system (phases are sized so the
        # offered load drains them with margin).
        assert result.issued >= 0.95 * schedule.total_ops

    def test_phase_markers_in_trace(self):
        result = _run("scan_storm")
        phases = [line for line in result.trace if " phase " in line]
        schedule = build_scenario("scan_storm", TINY)
        assert len(phases) == len(schedule.phases)
        # Marker text carries the phase index and name in order.
        for idx, (line, phase) in enumerate(zip(phases, schedule.phases)):
            assert f"phase {idx} {phase.name}" in line

    def test_dormant_tenant_issues_nothing_before_arrival(self):
        result = _run("tenant_churn")
        schedule = build_scenario("tenant_churn", TINY)
        last = schedule.tenant_names[-1]
        starts = schedule.phase_starts()
        arrival_us = starts[len(schedule.tenant_names) - 1]
        for line in result.trace:
            ts, kind, *fields = line.split(" ")
            if kind == "arrive" and fields[1] == last:
                assert float(ts) >= arrival_us
                break
        else:
            pytest.fail("late tenant never issued")

    def test_keyspace_growth_preloads_prefix_only(self):
        result = _run("keyspace_growth")
        schedule = build_scenario("keyspace_growth", TINY)
        preloaded = sum(
            s.keys_owned for s in result.shards
        )  # router owns the full range
        assert preloaded == schedule.num_keys
        # But the trees only bulk-loaded the preload prefix: the fleet
        # serves the run without ever having seen the upper two thirds.
        assert result.completed > 0

    def test_obs_phase_counters(self):
        from repro.obs import names as N

        result = _run("write_flood", obs=True, keep_trace=False)
        schedule = build_scenario("write_flood", TINY)
        transitions = sum(
            w.counters.get(N.SERVE_PHASE_TRANSITIONS, 0)
            for w in result.obs_fleet_windows
        )
        assert transitions == len(schedule.phases)
        kinds = {
            e.kind
            for r in result.obs_recorders
            for e in r.trace.events()
        }
        assert N.EV_PHASE in kinds


class TestScriptedSession:
    def _slot(self, start, end, ops, scale=1.0, num_keys=50):
        stream = None
        if ops:
            spec = WorkloadSpec(num_keys=num_keys, get_ratio=1.0)
            stream = WorkloadGenerator(spec, seed=1).ops(ops)
        return PhaseSlot(start, end, ops, scale, stream)

    def _session(self, slots):
        tenant = TenantConfig(name="t0", ops=sum(s.ops_left for s in slots) or 1)
        return ScriptedSession(tenant, slots, seed=3)

    def test_poll_walks_phases(self):
        session = self._session(
            [self._slot(0.0, 100.0, 2), self._slot(100.0, 200.0, 0)]
        )
        kind, _, op = session.poll(0.0)
        assert kind == "issue" and op is not None
        kind, _, _ = session.poll(50.0)
        assert kind == "issue"
        # Budget drained: sleep to the phase end, then the dormant
        # phase sleeps to its own end, then the script is done.
        assert session.poll(60.0) == ("sleep", 100.0, None)
        assert session.poll(150.0) == ("sleep", 200.0, None)
        assert session.poll(200.0) == ("done", 0.0, None)
        assert session.issued == 2

    def test_sleep_targets_are_in_the_future(self):
        session = self._session([self._slot(100.0, 200.0, 1)])
        kind, wake, _ = session.poll(0.0)
        assert kind == "sleep" and wake == 100.0

    def test_rate_scale_shortens_delays(self):
        fast = self._session([self._slot(0.0, 1e9, 1000, scale=8.0)])
        slow = self._session([self._slot(0.0, 1e9, 1000, scale=1.0)])
        n = 500
        mean_fast = sum(fast.arrival_delay_us() for _ in range(n)) / n
        mean_slow = sum(slow.arrival_delay_us() for _ in range(n)) / n
        assert mean_fast < mean_slow / 4

    def test_closed_mode_rejected(self):
        tenant = TenantConfig(name="t0", ops=1, mode="closed")
        with pytest.raises(ConfigError, match="open-loop only"):
            ScriptedSession(tenant, [self._slot(0.0, 1.0, 1)], seed=0)

    def test_empty_script_rejected(self):
        tenant = TenantConfig(name="t0", ops=1)
        with pytest.raises(ConfigError, match="empty phase script"):
            ScriptedSession(tenant, [], seed=0)
