"""Bounded request queues: admission budget, shedding, flow invariants."""

from __future__ import annotations

import pytest

from repro.errors import CacheError, ConfigError, InvariantError
from repro.serve.queueing import Request, RequestQueue, SubRequest
from repro.workloads.generator import Operation


def sub(seq=0, shard=0, t=0.0):
    op = Operation("get", "key000000000000000000001")
    request = Request(seq, "tenant", op, t, fanout=1)
    return SubRequest(request, shard, op, t)


class TestQueue:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            RequestQueue(0, 0)

    def test_fifo_order(self):
        q = RequestQueue(0, 4)
        subs = [sub(seq=i) for i in range(3)]
        for s in subs:
            q.push(s)
        assert [q.pop().request.seq for _ in range(3)] == [0, 1, 2]

    def test_room_and_depth_tracking(self):
        q = RequestQueue(0, 2)
        assert q.has_room()
        q.push(sub(0))
        q.push(sub(1))
        assert not q.has_room()
        assert q.depth == len(q) == 2
        assert q.peak_depth == 2
        q.pop()
        assert q.has_room()
        assert q.peak_depth == 2  # peak is sticky

    def test_overflow_and_underflow_raise(self):
        q = RequestQueue(3, 1)
        q.push(sub(0))
        with pytest.raises(CacheError):
            q.push(sub(1))
        q.pop()
        with pytest.raises(CacheError):
            q.pop()

    def test_shedding_is_counted_not_silent(self):
        q = RequestQueue(0, 1)
        q.push(sub(0))
        q.note_rejected()
        q.note_rejected()
        assert q.rejected == 2
        assert q.accepted == 1

    def test_flow_conservation_invariant(self):
        q = RequestQueue(0, 8)
        for i in range(5):
            q.push(sub(i))
        for _ in range(2):
            q.pop()
        q.check_invariants()
        assert q.accepted - q.served == q.depth

    def test_corrupted_counters_detected(self):
        q = RequestQueue(0, 2)
        q.push(sub(0))
        q.served = 7  # simulate bookkeeping corruption
        with pytest.raises(InvariantError):
            q.check_invariants()

    def test_corrupted_peak_detected(self):
        q = RequestQueue(0, 2)
        q.push(sub(0))
        q.peak_depth = 0
        with pytest.raises(InvariantError):
            q.check_invariants()

    def test_sampled_sanitizer_hook(self):
        q = RequestQueue(0, 4)
        q.enable_sanitizer(period=1)
        assert q.sanitizing
        q.push(sub(0))
        q.pop()
        assert q._sanitizer is not None and q._sanitizer.checks_run >= 2


class TestRequest:
    def test_scan_requests_collect_parts(self):
        op = Operation("scan", "key000000000000000000000", length=4)
        request = Request(0, "t", op, 0.0, fanout=3)
        assert request.parts == []
        assert request.remaining == 3

    def test_point_requests_have_no_parts(self):
        request = Request(0, "t", Operation("get", "k"), 0.0, fanout=1)
        assert request.parts is None


class TestDeadlineAndDrain:
    def _sub_with_deadline(self, seq, deadline_us, t=0.0):
        op = Operation("get", "key000000000000000000001")
        request = Request(seq, "tenant", op, t, fanout=1, deadline_us=deadline_us)
        return SubRequest(request, 0, op, t)

    def test_requests_without_deadline_never_expire(self):
        request = Request(0, "t", Operation("get", "k"), 0.0, fanout=1)
        assert not request.expired(1e12)

    def test_deadline_expiry_is_strict(self):
        request = Request(
            0, "t", Operation("get", "k"), 0.0, fanout=1, deadline_us=100.0
        )
        assert not request.expired(100.0)
        assert request.expired(100.1)

    def test_pop_live_skips_expired_heads(self):
        q = RequestQueue(0, 8)
        q.push(self._sub_with_deadline(0, deadline_us=10.0))
        q.push(self._sub_with_deadline(1, deadline_us=10.0))
        q.push(self._sub_with_deadline(2, deadline_us=500.0))
        live, dropped = q.pop_live(now_us=100.0)
        assert live is not None and live.request.seq == 2
        assert [d.request.seq for d in dropped] == [0, 1]
        assert q.expired == 2
        assert q.served == 1
        q.check_invariants()

    def test_pop_live_on_all_expired_returns_none(self):
        q = RequestQueue(0, 4)
        q.push(self._sub_with_deadline(0, deadline_us=1.0))
        live, dropped = q.pop_live(now_us=50.0)
        assert live is None
        assert len(dropped) == 1
        assert q.expired == 1
        q.check_invariants()

    def test_pop_live_without_deadlines_behaves_like_pop(self):
        q = RequestQueue(0, 4)
        q.push(sub(seq=0))
        q.push(sub(seq=1))
        live, dropped = q.pop_live(now_us=1e9)
        assert live is not None and live.request.seq == 0
        assert dropped == []
        assert q.expired == 0

    def test_done_requests_are_not_double_expired(self):
        q = RequestQueue(0, 4)
        s = self._sub_with_deadline(0, deadline_us=1.0)
        s.request.done = True  # e.g. a hedge already answered it
        q.push(s)
        live, dropped = q.pop_live(now_us=50.0)
        assert live is s
        assert dropped == []

    def test_drain_empties_and_accounts(self):
        q = RequestQueue(0, 8)
        for i in range(3):
            q.push(sub(seq=i))
        victims = q.drain()
        assert [v.request.seq for v in victims] == [0, 1, 2]
        assert q.drained == 3
        assert len(q) == 0
        assert q.drain() == []  # idempotent on empty
        q.check_invariants()

    def test_flow_invariant_covers_all_exits(self):
        q = RequestQueue(0, 8)
        q.push(self._sub_with_deadline(0, deadline_us=1.0))
        q.push(sub(seq=1))
        q.push(sub(seq=2))
        q.pop_live(now_us=10.0)  # expires 0, serves 1
        q.drain()  # drains 2
        assert (q.accepted, q.served, q.expired, q.drained) == (3, 1, 1, 1)
        q.check_invariants()
