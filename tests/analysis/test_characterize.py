"""Workload characterization."""

from __future__ import annotations

import pytest

from repro.analysis.characterize import WorkloadProfile, characterize, format_profile
from repro.workloads.generator import (
    Operation,
    WorkloadGenerator,
    WorkloadSpec,
    balanced_workload,
)


class TestProfile:
    def test_counts_by_kind(self):
        ops = [
            Operation("get", "a"),
            Operation("scan", "b", length=16),
            Operation("put", "c", value="v"),
            Operation("delete", "d"),
        ]
        profile = characterize(ops)
        assert (profile.gets, profile.scans, profile.puts, profile.deletes) == (
            1, 1, 1, 1,
        )
        assert profile.get_ratio == 0.25
        assert profile.write_ratio == 0.5

    def test_scan_length_histogram(self):
        ops = [Operation("scan", "a", length=16)] * 3 + [
            Operation("scan", "b", length=64)
        ]
        profile = characterize(ops)
        assert profile.scan_lengths == {16: 3, 64: 1}
        assert profile.avg_scan_length == pytest.approx((3 * 16 + 64) / 4)

    def test_empty_stream(self):
        profile = characterize([])
        assert profile.ops == 0
        assert profile.get_ratio == 0.0
        assert profile.avg_scan_length == 0.0

    def test_generated_mix_recovered(self):
        spec = balanced_workload(2000)
        profile = characterize(WorkloadGenerator(spec, seed=3).ops(3000))
        assert profile.get_ratio == pytest.approx(1 / 3, abs=0.05)
        assert profile.scan_ratio == pytest.approx(1 / 3, abs=0.05)
        assert profile.write_ratio == pytest.approx(1 / 3, abs=0.05)
        assert profile.avg_scan_length == pytest.approx(16.0)

    def test_skew_estimation_orders_correctly(self):
        def theta_of(skew):
            spec = WorkloadSpec(num_keys=5000, get_ratio=1.0, point_skew=skew)
            return characterize(
                WorkloadGenerator(spec, seed=4).ops(8000)
            ).estimated_zipf_theta

        low, high = theta_of(0.5), theta_of(0.99)
        assert high > low

    def test_top1pct_mass_reflects_skew(self):
        skewed = WorkloadSpec(num_keys=5000, get_ratio=1.0, point_skew=0.99)
        uniform = WorkloadSpec(num_keys=5000, get_ratio=1.0, point_skew=0.0)
        mass_s = characterize(WorkloadGenerator(skewed, seed=5).ops(5000)).top1pct_mass
        mass_u = characterize(WorkloadGenerator(uniform, seed=5).ops(5000)).top1pct_mass
        assert mass_s > 2 * mass_u

    def test_format_profile(self):
        profile = characterize(
            [Operation("get", "a"), Operation("scan", "b", length=16)]
        )
        text = format_profile(profile)
        assert "operations" in text and "scan lengths" in text
