"""Stack distances and Mattson curves — including cross-validation
against the actual LRU cache implementation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import (
    INFINITE,
    mattson_hit_rates,
    miss_ratio_curve,
    stack_distances,
)
from repro.cache.base import BudgetedCache
from repro.cache.lru import LRUPolicy
from repro.errors import ConfigError


class TestStackDistances:
    def test_first_accesses_are_infinite(self):
        assert stack_distances(["a", "b", "c"]) == [INFINITE] * 3

    def test_immediate_rereference_is_zero(self):
        assert stack_distances(["a", "a"]) == [INFINITE, 0]

    def test_classic_example(self):
        # a b c a : the re-access of a skipped over {b, c}.
        assert stack_distances(["a", "b", "c", "a"]) == [
            INFINITE,
            INFINITE,
            INFINITE,
            2,
        ]

    def test_duplicates_between_do_not_double_count(self):
        # a b b a : only one distinct key (b) between the two a's.
        assert stack_distances(["a", "b", "b", "a"])[-1] == 1

    def test_empty_trace(self):
        assert stack_distances([]) == []


class TestMattson:
    def test_known_trace(self):
        keys = ["a", "b", "a", "b", "c", "a"]
        # distances: inf inf 1 1 inf 2
        rates = mattson_hit_rates(keys, [1, 2, 3])
        assert rates[1] == 0.0  # no distance < 1
        assert rates[2] == pytest.approx(2 / 6)
        assert rates[3] == pytest.approx(3 / 6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            mattson_hit_rates(["a"], [0])

    def test_curve_monotone_nonincreasing(self):
        rng = np.random.default_rng(1)
        keys = [f"k{int(i)}" for i in rng.zipf(1.3, size=2000) % 200]
        curve = miss_ratio_curve(keys, max_size=100, num_points=10)
        misses = [m for _, m in curve]
        assert all(a >= b - 1e-12 for a, b in zip(misses, misses[1:]))

    def test_empty_trace_curve(self):
        assert mattson_hit_rates([], [4]) == {4: 0.0}


def simulate_lru_hits(keys, capacity):
    cache = BudgetedCache(capacity, LRUPolicy(), lambda k, v: 1)
    hits = 0
    for key in keys:
        if cache.get(key) is not None:
            hits += 1
        else:
            cache.put(key, "v")
    return hits / len(keys) if keys else 0.0


class TestCrossValidation:
    """Mattson's construction must predict the real LRU cache exactly."""

    def test_zipf_trace_matches_simulation(self):
        rng = np.random.default_rng(7)
        keys = [f"k{int(i) % 300}" for i in rng.zipf(1.2, size=3000)]
        for capacity in (4, 16, 64, 128):
            predicted = mattson_hit_rates(keys, [capacity])[capacity]
            simulated = simulate_lru_hits(keys, capacity)
            assert predicted == pytest.approx(simulated, abs=1e-12), capacity

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.sampled_from([f"k{i}" for i in range(12)]), min_size=1, max_size=120),
        st.integers(min_value=1, max_value=12),
    )
    def test_property_prediction_equals_simulation(self, keys, capacity):
        predicted = mattson_hit_rates(keys, [capacity])[capacity]
        simulated = simulate_lru_hits(keys, capacity)
        assert predicted == pytest.approx(simulated, abs=1e-12)
