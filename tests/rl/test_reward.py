"""Reward model: the paper's IO_estimate formula and smoothing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.rl.reward import (
    RewardCalculator,
    adapt_learning_rate,
    estimate_no_cache_io,
)


class TestIOEstimate:
    def test_formula_matches_paper(self):
        # IO = p(1+FPR) + s*l/B + s*(L + r0max/2 - 1)
        io = estimate_no_cache_io(
            points=100,
            scans=50,
            avg_scan_length=16,
            entries_per_block=4,
            num_levels=4,
            level0_max_runs=8,
        )
        assert io == 100 + 50 * 4 + 50 * (4 + 4 - 1)

    def test_fpr_term(self):
        io = estimate_no_cache_io(100, 0, 0, 4, 1, 0, bloom_fpr=0.01)
        assert io == pytest.approx(101.0)

    def test_pure_write_window_is_zero(self):
        assert estimate_no_cache_io(0, 0, 0, 4, 4, 8) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            estimate_no_cache_io(1, 1, 1, 0, 1, 1)


class TestRewardCalculator:
    def calc(self, alpha=0.9, mode="delta"):
        return RewardCalculator(alpha=alpha, entries_per_block=4, mode=mode)

    def test_first_window_initialises_smoothing(self):
        rc = self.calc()
        out = rc.compute(1000, 0, 0, io_miss=500, num_levels=4, level0_max_runs=8)
        assert out.h_estimate == pytest.approx(0.5)
        assert out.h_smoothed == pytest.approx(0.5)
        assert out.reward == 0.0

    def test_improvement_gives_positive_reward(self):
        rc = self.calc()
        rc.compute(1000, 0, 0, io_miss=500, num_levels=4, level0_max_runs=8)
        out = rc.compute(1000, 0, 0, io_miss=200, num_levels=4, level0_max_runs=8)
        assert out.reward > 0

    def test_degradation_gives_negative_reward(self):
        rc = self.calc()
        rc.compute(1000, 0, 0, io_miss=200, num_levels=4, level0_max_runs=8)
        out = rc.compute(1000, 0, 0, io_miss=900, num_levels=4, level0_max_runs=8)
        assert out.reward < 0

    def test_smoothing_formula(self):
        rc = self.calc(alpha=0.9)
        rc.compute(1000, 0, 0, io_miss=500, num_levels=4, level0_max_runs=8)
        out = rc.compute(1000, 0, 0, io_miss=0, num_levels=4, level0_max_runs=8)
        # h_smoothed = 0.9 * 0.5 + 0.1 * 1.0 = 0.55
        assert out.h_smoothed == pytest.approx(0.55)

    def test_alpha_zero_is_unsmoothed(self):
        rc = self.calc(alpha=0.0)
        rc.compute(1000, 0, 0, io_miss=500, num_levels=4, level0_max_runs=8)
        out = rc.compute(1000, 0, 0, io_miss=0, num_levels=4, level0_max_runs=8)
        assert out.h_smoothed == pytest.approx(1.0)

    def test_pure_write_window_holds_state(self):
        rc = self.calc()
        rc.compute(1000, 0, 0, io_miss=500, num_levels=4, level0_max_runs=8)
        out = rc.compute(0, 0, 0, io_miss=0, num_levels=4, level0_max_runs=8)
        assert out.reward == 0.0
        assert out.h_smoothed == pytest.approx(0.5)

    def test_reset(self):
        rc = self.calc()
        rc.compute(1000, 0, 0, io_miss=500, num_levels=4, level0_max_runs=8)
        rc.reset()
        assert rc.h_smoothed == 0.0

    def test_alpha_validated(self):
        with pytest.raises(ConfigError):
            RewardCalculator(alpha=1.5)

    def test_mode_validated(self):
        with pytest.raises(ConfigError):
            RewardCalculator(mode="bogus")


class TestLevelMode:
    def calc(self, alpha=0.3):
        return RewardCalculator(alpha=alpha, entries_per_block=4, mode="level")

    def test_reward_is_smoothed_level(self):
        rc = self.calc(alpha=0.0)
        out = rc.compute(1000, 0, 0, io_miss=300, num_levels=4, level0_max_runs=8)
        assert out.reward == pytest.approx(0.7)

    def test_better_configuration_scores_higher(self):
        """Unlike delta mode, level mode separates two plateaus."""
        rc = self.calc(alpha=0.0)
        rc.compute(1000, 0, 0, io_miss=500, num_levels=4, level0_max_runs=8)
        low = rc.compute(1000, 0, 0, io_miss=500, num_levels=4, level0_max_runs=8)
        high = rc.compute(1000, 0, 0, io_miss=200, num_levels=4, level0_max_runs=8)
        assert high.reward > low.reward

    def test_trend_still_reported(self):
        rc = self.calc(alpha=0.5)
        rc.compute(1000, 0, 0, io_miss=500, num_levels=4, level0_max_runs=8)
        out = rc.compute(1000, 0, 0, io_miss=900, num_levels=4, level0_max_runs=8)
        assert out.trend < 0  # degradation, for the adaptive lr

    def test_pure_write_window_repeats_level(self):
        rc = self.calc()
        rc.compute(1000, 0, 0, io_miss=500, num_levels=4, level0_max_runs=8)
        out = rc.compute(0, 0, 0, io_miss=0, num_levels=4, level0_max_runs=8)
        assert out.reward == pytest.approx(rc.h_smoothed)
        assert out.trend == 0.0


class TestAdaptiveLearningRate:
    def test_negative_reward_raises_lr(self):
        assert adapt_learning_rate(1e-3, -0.5) > 1e-3

    def test_positive_reward_lowers_lr(self):
        assert adapt_learning_rate(1e-3, 0.5) < 1e-3

    def test_clamped(self):
        assert adapt_learning_rate(1e-2, -100.0) == 1e-2
        assert adapt_learning_rate(1e-5, 0.9999) == 1e-5
