"""Actor-critic agent: action bounds, learning signal, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl.actor_critic import ActorCriticAgent

STATE, ACTIONS = 6, 3


def agent(seed=0, **kw):
    return ActorCriticAgent(STATE, ACTIONS, hidden_dim=32, seed=seed, **kw)


class TestActing:
    def test_mean_in_unit_box(self):
        a = agent()
        mean = a.action_mean(np.random.default_rng(0).random(STATE))
        assert mean.shape == (ACTIONS,)
        assert np.all((mean >= 0) & (mean <= 1))

    def test_deterministic_without_exploration(self):
        a = agent()
        s = np.ones(STATE) * 0.3
        assert np.allclose(a.act(s, explore=False), a.act(s, explore=False))

    def test_exploration_adds_noise(self):
        a = agent()
        s = np.ones(STATE) * 0.3
        assert not np.allclose(a.act(s), a.act(s))

    def test_clip_action(self):
        clipped = ActorCriticAgent.clip_action(np.array([-0.5, 0.5, 1.5]))
        assert list(clipped) == [0.0, 0.5, 1.0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            ActorCriticAgent(0, 3)


class TestLearning:
    def test_update_returns_td_error(self):
        a = agent()
        s = np.ones(STATE, dtype=np.float32) * 0.5
        act = a.act(s)
        delta = a.update(s, act, reward=1.0, next_state=s)
        assert isinstance(delta, float)
        assert a.updates_total == 1

    def test_critic_tracks_constant_reward(self):
        a = agent(gamma=0.0, critic_lr=5e-3)
        s = np.ones(STATE, dtype=np.float32) * 0.5
        for _ in range(400):
            a.update(s, a.act(s), reward=1.0, next_state=s)
        assert abs(a.value(s) - 1.0) < 0.3

    def test_policy_moves_toward_rewarded_action(self):
        a = agent(seed=4)
        s = np.ones(STATE, dtype=np.float32) * 0.5
        before = a.action_mean(s)[0]
        for _ in range(300):
            act = a.act(s)
            a.update(s, act, reward=float(act[0]), next_state=s)
        assert a.action_mean(s)[0] > before

    def test_done_ignores_next_state_value(self):
        a = agent(gamma=0.9)
        s = np.zeros(STATE, dtype=np.float32)
        delta = a.update(s, a.act(s), reward=0.0, next_state=s, done=True)
        # delta = r + 0 - V(s): no bootstrap term
        assert abs(delta - (0.0 - a.value(s))) < 1.0

    def test_log_std_stays_clamped(self):
        a = agent()
        s = np.ones(STATE, dtype=np.float32)
        for _ in range(100):
            a.update(s, a.act(s), reward=1.0, next_state=s)
        assert np.all(a.log_std >= -4.0) and np.all(a.log_std <= 0.0)


class TestLearningRate:
    def test_set_actor_lr_clamped(self):
        a = agent()
        a.set_actor_lr(1e9)
        assert a.actor_lr == 1e-1
        a.set_actor_lr(0.0)
        assert a.actor_lr == 1e-6


class TestIntrospection:
    def test_memory_overhead_structure(self):
        a = ActorCriticAgent(14, 4, hidden_dim=256, seed=0)
        overhead = a.memory_overhead_bytes()
        # Paper Table 2: ~550 KB weights, ~2 MB total with training state.
        assert 400_000 < overhead["model_weights"] < 700_000
        assert overhead["total"] == (
            overhead["model_weights"]
            + overhead["gradients"]
            + overhead["optimizer_states"]
        )
        assert 1_500_000 < overhead["total"] < 3_000_000

    def test_parameter_count_near_paper(self):
        a = ActorCriticAgent(14, 4, hidden_dim=256, seed=0)
        assert 130_000 < a.num_parameters < 160_000  # paper: ~140k

    def test_state_dict_roundtrip(self):
        a = agent(seed=1)
        b = agent(seed=2)
        b.load_state_dict(a.state_dict())
        s = np.ones(STATE, dtype=np.float32) * 0.4
        assert np.allclose(a.action_mean(s), b.action_mean(s))
        assert abs(a.value(s) - b.value(s)) < 1e-6

    def test_save_load_npz(self, tmp_path):
        a = agent(seed=1)
        path = str(tmp_path / "agent.npz")
        a.save(path)
        b = agent(seed=9)
        b.load(path)
        s = np.ones(STATE, dtype=np.float32)
        assert np.allclose(a.action_mean(s), b.action_mean(s))
