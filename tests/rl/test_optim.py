"""Adam optimizer: convergence, state accounting, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl.optim import Adam


class TestAdam:
    def test_minimises_quadratic(self):
        x = np.array([5.0, -3.0], dtype=np.float32)
        opt = Adam([x], lr=0.1)
        for _ in range(500):
            opt.step([2.0 * x])  # d/dx of x^2
        assert np.all(np.abs(x) < 0.05)

    def test_updates_in_place(self):
        x = np.ones(3, dtype=np.float32)
        ref = x
        Adam([x], lr=0.1).step([np.ones(3)])
        assert ref is x and not np.allclose(x, 1.0)

    def test_state_bytes(self):
        x = np.zeros((10, 10), dtype=np.float32)
        opt = Adam([x])
        assert opt.state_bytes == 2 * x.nbytes

    def test_steps_counted(self):
        x = np.zeros(2, dtype=np.float32)
        opt = Adam([x])
        opt.step([np.ones(2)])
        opt.step([np.ones(2)])
        assert opt.steps_taken == 2

    def test_gradient_count_validated(self):
        opt = Adam([np.zeros(2, dtype=np.float32)])
        with pytest.raises(ConfigError):
            opt.step([np.ones(2), np.ones(2)])

    def test_lr_validated(self):
        with pytest.raises(ConfigError):
            Adam([np.zeros(1)], lr=0.0)

    def test_lr_mutable_at_runtime(self):
        """The paper adapts the actor lr every window."""
        x = np.array([10.0], dtype=np.float32)
        opt = Adam([x], lr=1e-3)
        opt.lr = 1.0
        opt.step([np.array([1.0])])
        assert abs(float(x[0]) - 10.0) > 0.1  # big lr took a big step
