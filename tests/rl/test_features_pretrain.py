"""State featurization and the pretraining pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import SCAN_LEN_SCALE, STATE_DIM, state_vector
from repro.rl.pretrain import (
    generate_supervised_dataset,
    heuristic_target,
    pretrain_actor_supervised,
)


def default_state(**overrides):
    kwargs = dict(
        point_ratio=0.5,
        scan_ratio=0.3,
        write_ratio=0.2,
        avg_scan_length=16.0,
        range_hit_rate=0.4,
        block_hit_rate=0.6,
        h_smoothed=0.5,
        range_occupancy=0.9,
        block_occupancy=0.8,
        compactions=2,
        current_range_ratio=0.5,
        current_point_threshold_norm=0.1,
        current_a_norm=0.125,
        current_b=0.5,
    )
    kwargs.update(overrides)
    return state_vector(**kwargs)


class TestStateVector:
    def test_dimension(self):
        assert default_state().shape == (STATE_DIM,)

    def test_all_features_bounded(self):
        s = default_state(avg_scan_length=10_000.0, compactions=1000)
        assert np.all(s >= -1.0) and np.all(s <= 1.0)

    def test_scan_length_normalised(self):
        s = default_state(avg_scan_length=SCAN_LEN_SCALE / 2)
        assert s[3] == pytest.approx(0.5)

    def test_out_of_range_inputs_clipped(self):
        s = default_state(point_ratio=5.0, h_smoothed=-9.0)
        assert s[0] == 1.0 and s[6] == -1.0

    def test_dtype_float32(self):
        assert default_state().dtype == np.float32


class TestHeuristicTarget:
    def test_shape_and_bounds(self):
        t = heuristic_target(0.3, 0.3, 0.4, 16.0)
        assert t.shape == (4,)
        assert np.all((t >= 0) & (t <= 1))

    def test_write_heavy_favours_range_cache(self):
        write_heavy = heuristic_target(0.1, 0.15, 0.75, 16.0)
        scan_heavy = heuristic_target(0.05, 0.9, 0.05, 16.0)
        assert write_heavy[0] > scan_heavy[0]

    def test_short_scans_favour_block_cache(self):
        t = heuristic_target(0.0, 1.0, 0.0, 16.0)
        assert t[0] < 0.3

    def test_point_heavy_sets_frequency_bar(self):
        assert heuristic_target(0.9, 0.05, 0.05, 0.0)[1] > 0.0
        assert heuristic_target(0.2, 0.4, 0.4, 16.0)[1] == 0.0


class TestPretraining:
    def test_dataset_shapes(self):
        ds = generate_supervised_dataset(32, seed=1)
        assert len(ds) == 32
        state, target = ds[0]
        assert state.shape == (STATE_DIM,) and target.shape == (4,)

    def test_dataset_deterministic(self):
        a = generate_supervised_dataset(8, seed=5)
        b = generate_supervised_dataset(8, seed=5)
        assert all(np.array_equal(s1, s2) for (s1, _), (s2, _) in zip(a, b))

    def test_loss_decreases(self):
        agent = ActorCriticAgent(STATE_DIM, 4, hidden_dim=32, seed=1)
        ds = generate_supervised_dataset(96, seed=2)
        losses = pretrain_actor_supervised(agent, ds, epochs=15, lr=2e-3, seed=3)
        assert losses[-1] < losses[0] * 0.8

    def test_pretrained_agent_matches_expert_direction(self):
        agent = ActorCriticAgent(STATE_DIM, 4, hidden_dim=64, seed=1)
        ds = generate_supervised_dataset(512, seed=2)
        pretrain_actor_supervised(agent, ds, epochs=40, lr=2e-3, seed=3)
        write_heavy = default_state(
            point_ratio=0.05, scan_ratio=0.15, write_ratio=0.8, avg_scan_length=16.0
        )
        scan_heavy = default_state(
            point_ratio=0.05, scan_ratio=0.9, write_ratio=0.05, avg_scan_length=16.0
        )
        ratio_write = agent.action_mean(write_heavy)[0]
        ratio_scan = agent.action_mean(scan_heavy)[0]
        assert ratio_write > ratio_scan  # more range cache under writes

    def test_empty_dataset_rejected(self):
        agent = ActorCriticAgent(STATE_DIM, 4, hidden_dim=16, seed=1)
        with pytest.raises(ConfigError):
            pretrain_actor_supervised(agent, [], epochs=1)

    def test_sample_count_validated(self):
        with pytest.raises(ConfigError):
            generate_supervised_dataset(0)
