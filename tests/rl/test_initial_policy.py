"""Initial-policy pinning (small-final-layer logit init)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl.actor_critic import ActorCriticAgent


class TestSetInitialPolicy:
    def test_mean_pinned_across_states(self):
        agent = ActorCriticAgent(6, 3, hidden_dim=32, seed=1)
        targets = np.array([0.5, 0.05, 0.8], dtype=np.float32)
        agent.set_initial_policy(targets)
        rng = np.random.default_rng(2)
        for _ in range(10):
            state = rng.random(6).astype(np.float32)
            assert np.allclose(agent.action_mean(state), targets, atol=0.02)

    def test_extreme_targets_clipped(self):
        agent = ActorCriticAgent(4, 2, hidden_dim=16, seed=1)
        agent.set_initial_policy(np.array([0.0, 1.0]))
        mean = agent.action_mean(np.zeros(4, dtype=np.float32))
        assert mean[0] < 0.01 and mean[1] > 0.99

    def test_shape_validated(self):
        agent = ActorCriticAgent(4, 2, hidden_dim=16, seed=1)
        with pytest.raises(ConfigError):
            agent.set_initial_policy(np.array([0.5]))

    def test_pinned_policy_remains_trainable(self):
        agent = ActorCriticAgent(4, 2, hidden_dim=16, seed=1)
        agent.set_initial_policy(np.array([0.5, 0.5]))
        state = np.full(4, 0.5, dtype=np.float32)
        before = agent.action_mean(state)[0]
        for _ in range(300):
            action = agent.act(state)
            agent.update(state, action, reward=float(action[0]), next_state=state)
        assert agent.action_mean(state)[0] > before
