"""MLP: shapes, numerical gradients, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl.nn import MLP, relu, sigmoid


class TestActivations:
    def test_relu(self):
        out = relu(np.array([-1.0, 0.0, 2.0]))
        assert list(out) == [0.0, 0.0, 2.0]

    def test_sigmoid_bounds_and_symmetry(self):
        x = np.array([-30.0, 0.0, 30.0])
        out = sigmoid(x)
        assert 0.0 <= out[0] < 1e-9
        assert abs(out[1] - 0.5) < 1e-9
        assert 1.0 - 1e-9 < out[2] <= 1.0

    def test_sigmoid_stable_for_large_negatives(self):
        assert np.isfinite(sigmoid(np.array([-1000.0]))).all()


class TestForward:
    def test_single_and_batch_shapes(self):
        net = MLP([3, 5, 2], seed=0)
        assert net.forward(np.zeros(3)).shape == (2,)
        assert net.forward(np.zeros((7, 3))).shape == (7, 2)

    def test_deterministic_for_seed(self):
        a = MLP([3, 4, 2], seed=9).forward(np.ones(3))
        b = MLP([3, 4, 2], seed=9).forward(np.ones(3))
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ConfigError):
            MLP([3])
        with pytest.raises(ConfigError):
            MLP([3, 0, 2])


class TestBackward:
    def test_numerical_gradient_check(self):
        rng = np.random.default_rng(1)
        net = MLP([4, 6, 6, 3], seed=2)
        x = rng.standard_normal(4).astype(np.float32)
        g = rng.standard_normal(3).astype(np.float32)
        net.forward(x, remember=True)
        grads = net.backward(g)
        params = net.parameters()
        eps = 1e-3
        checked = 0
        for p_idx in range(len(params)):
            flat = params[p_idx].reshape(-1)
            for j in range(0, flat.size, max(1, flat.size // 5)):
                orig = flat[j]
                flat[j] = orig + eps
                up = float(net.forward(x) @ g)
                flat[j] = orig - eps
                dn = float(net.forward(x) @ g)
                flat[j] = orig
                numeric = (up - dn) / (2 * eps)
                analytic = grads[p_idx].reshape(-1)[j]
                assert abs(numeric - analytic) < 5e-2, (p_idx, j)
                checked += 1
        assert checked > 20

    def test_backward_without_forward_raises(self):
        with pytest.raises(ConfigError):
            MLP([2, 2], seed=0).backward(np.zeros(2))

    def test_batch_gradients_sum_over_samples(self):
        net = MLP([2, 3], seed=0)
        x = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        net.forward(x, remember=True)
        grads = net.backward(np.ones((2, 3), dtype=np.float32))
        assert grads[1].shape == (3,)
        assert np.allclose(grads[1], 2.0)  # bias grad sums both rows


class TestIntrospection:
    def test_parameter_count_matches_paper_scale(self):
        # The paper's two-256-hidden architecture: ~70k per network.
        net = MLP([14, 256, 256, 4], seed=0)
        expected = 14 * 256 + 256 + 256 * 256 + 256 + 256 * 4 + 4
        assert net.num_parameters == expected
        assert net.size_bytes == expected * 4  # float32

    def test_state_dict_roundtrip(self):
        net = MLP([3, 4, 2], seed=1)
        state = net.state_dict()
        other = MLP([3, 4, 2], seed=99)
        other.load_state_dict(state)
        x = np.ones(3, dtype=np.float32)
        assert np.allclose(net.forward(x), other.forward(x))

    def test_load_preserves_array_identity(self):
        """Optimizers hold references; loading must copy in place."""
        net = MLP([3, 4, 2], seed=1)
        refs = [id(p) for p in net.parameters()]
        net.load_state_dict(MLP([3, 4, 2], seed=2).state_dict())
        assert [id(p) for p in net.parameters()] == refs

    def test_load_shape_mismatch_raises(self):
        net = MLP([3, 4, 2], seed=1)
        with pytest.raises(ConfigError):
            net.load_state_dict(MLP([3, 5, 2], seed=1).state_dict())
