"""Cost model: deterministic simulated time dominated by disk reads."""

from __future__ import annotations

import pytest

from repro.bench.simclock import ClockReading, CostModel, elapsed_us
from repro.bench.strategies import build_engine
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.workloads.keys import key_of, value_of


def seeded_engine(strategy="block", num_keys=500):
    opts = LSMOptions(memtable_entries=32, entries_per_sstable=64)
    tree = LSMTree(opts)
    tree.bulk_load((key_of(i), value_of(i)) for i in range(num_keys))
    return build_engine(strategy, tree, cache_bytes=32 * opts.block_size, seed=1)


class TestClockReading:
    def test_capture_counts_activity(self):
        engine = seeded_engine()
        before = ClockReading.capture(engine)
        engine.get(key_of(10))
        engine.scan(key_of(20), 4)
        engine.put(key_of(30), "x")
        after = ClockReading.capture(engine)
        assert after.points == before.points + 1
        assert after.scans == before.scans + 1
        assert after.writes == before.writes + 1
        assert after.disk_reads > before.disk_reads

    def test_elapsed_positive_and_deterministic(self):
        engine = seeded_engine()
        before = ClockReading.capture(engine)
        for i in range(50):
            engine.get(key_of(i))
        after = ClockReading.capture(engine)
        t1 = elapsed_us(before, after)
        t2 = elapsed_us(before, after)
        assert t1 == t2 > 0

    def test_disk_reads_dominate(self):
        """A cold read costs far more than a cached one, as on NVMe."""
        engine = seeded_engine()
        b0 = ClockReading.capture(engine)
        engine.get(key_of(7))  # cold: disk read
        b1 = ClockReading.capture(engine)
        engine.get(key_of(7))  # warm: block-cache hit
        b2 = ClockReading.capture(engine)
        cold = elapsed_us(b0, b1)
        warm = elapsed_us(b1, b2)
        assert cold > 10 * warm

    def test_custom_cost_model(self):
        engine = seeded_engine()
        before = ClockReading.capture(engine)
        engine.get(key_of(3))
        after = ClockReading.capture(engine)
        cheap = elapsed_us(before, after, CostModel(disk_block_read_us=1.0))
        expensive = elapsed_us(before, after, CostModel(disk_block_read_us=1000.0))
        assert expensive > cheap

    def test_range_insert_cost_charged(self):
        engine = seeded_engine("range")
        before = ClockReading.capture(engine)
        engine.scan(key_of(0), 16)  # fills the skip list
        after = ClockReading.capture(engine)
        assert after.range_insertions - before.range_insertions == 16
