"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

FAST = [
    "--num-keys", "400",
    "--cache-kb", "64",
    "--memtable-entries", "32",
    "--sstable-entries", "64",
]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.strategy == "adcache"
        assert args.workload == "balanced"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "bogus"])


class TestCommands:
    def test_run_command(self, capsys):
        code = main(
            ["run", "--strategy", "block", "--workload", "point",
             "--ops", "300", "--warmup", "100", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RocksDB (Block Cache)" in out
        assert "est. hit rate" in out

    def test_compare_command(self, capsys):
        code = main(
            ["compare", "--workload", "point", "--ops", "200",
             "--warmup", "100", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AdCache" in out and "KV Cache" in out

    def test_phases_command(self, capsys):
        code = main(
            ["phases", "--strategy", "block", "--phases", "CD",
             "--ops-per-phase", "300", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "C" in out and "D" in out

    def test_serve_command(self, capsys):
        code = main(
            ["serve", "--clients", "2", "--shards", "2", "--ops", "400",
             "--num-keys", "400", "--cache-kb", "64",
             "--memtable-entries", "32", "--sstable-entries", "64",
             "--window-size", "100", "--rebalance-every", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-tenant" in out
        assert "per-shard" in out
        assert "trace digest" in out

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.clients == 8
        assert args.shards == 4
        assert args.partition == "hash"

    def test_serve_rejects_bad_partition(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--partition", "bogus"])


class TestBenchBatchSize:
    def test_batch_sizes_accumulate(self):
        args = build_parser().parse_args(
            ["bench", "--batch-size", "8", "--batch-size", "32"]
        )
        assert args.batch_sizes == [8, 32]

    def test_default_is_no_batched_family(self):
        args = build_parser().parse_args(["bench"])
        assert args.batch_sizes is None

    @pytest.mark.parametrize("bad", ["0", "-3", "two", "1.5"])
    def test_non_positive_batch_size_rejected(self, bad, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--batch-size", bad])
        err = capsys.readouterr().err
        assert "batch size must be" in err
