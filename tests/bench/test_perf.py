"""Perf microbenchmark harness: schema round-trip, regression gate,
repeat determinism, and a tiny end-to-end smoke run."""

from __future__ import annotations

import json

import pytest

from repro.bench.perf import (
    DEFAULT_FAIL_THRESHOLD,
    PerfReport,
    PhaseResult,
    compare_reports,
    load_baseline,
    run_perf,
    run_phase,
)
from repro.bench.report import perf_table
from repro.errors import ConfigError


def _phase(name="mixed", normalized=0.01, fingerprint="f" * 64, ops=100):
    return PhaseResult(
        name=name,
        ops=ops,
        wall_s=0.5,
        ops_per_sec=200.0,
        normalized_score=normalized,
        sim_qps=123.4,
        hit_rate=0.5,
        sst_reads=42,
        fingerprint=fingerprint,
    )


def _report(**phase_kwargs):
    return PerfReport(
        label="test",
        quick=True,
        seed=0,
        num_keys=100,
        ops_per_phase=100,
        cache_bytes=1024,
        calibration=1_000_000.0,
        phases=[_phase(**phase_kwargs)],
    )


class TestSchema:
    def test_round_trip_through_json(self, tmp_path):
        report = _report()
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report.to_dict()))
        loaded = load_baseline(str(path))
        assert loaded.to_dict() == report.to_dict()

    def test_load_baseline_unwraps_pr_envelope(self, tmp_path):
        # BENCH_PR*.json stores the committed baseline under "current".
        report = _report()
        envelope = {"schema": 1, "pr": 4, "current": report.to_dict()}
        path = tmp_path / "BENCH_PR4.json"
        path.write_text(json.dumps(envelope))
        loaded = load_baseline(str(path))
        assert loaded.phase("mixed").normalized_score == pytest.approx(0.01)

    def test_schema_version_mismatch_rejected(self):
        data = _report().to_dict()
        data["schema"] = 999
        with pytest.raises(ConfigError, match="unsupported bench schema"):
            PerfReport.from_dict(data)

    def test_malformed_report_rejected(self):
        with pytest.raises(ConfigError, match="malformed bench report"):
            PerfReport.from_dict({"schema": 1, "phases": [{"name": "x"}]})

    def test_perf_table_renders_report_dict(self):
        text = perf_table(_report().to_dict())
        assert "mixed" in text and "calibration" in text


class TestCompare:
    def test_no_regression_within_threshold(self):
        current = _report(normalized=0.008)  # -20% vs 0.01 baseline
        baseline = _report(normalized=0.01)
        assert compare_reports(current, baseline) == []

    def test_regression_beyond_threshold_reported(self):
        current = _report(normalized=0.007)  # -30% vs 0.01 baseline
        baseline = _report(normalized=0.01)
        problems = compare_reports(current, baseline)
        assert len(problems) == 1 and "mixed" in problems[0]

    def test_threshold_validated(self):
        with pytest.raises(ConfigError):
            compare_reports(_report(), _report(), threshold=1.5)
        assert DEFAULT_FAIL_THRESHOLD == pytest.approx(0.25)

    def test_fingerprint_drift_only_with_strict(self):
        current = _report(fingerprint="a" * 64)
        baseline = _report(fingerprint="b" * 64)
        assert compare_reports(current, baseline) == []
        problems = compare_reports(current, baseline, strict_fingerprints=True)
        assert len(problems) == 1 and "fingerprint changed" in problems[0]

    def test_fingerprints_not_compared_across_configs(self):
        # Different op counts simulate different work; digests can't match.
        current = _report(fingerprint="a" * 64, ops=100)
        baseline = _report(fingerprint="b" * 64, ops=200)
        assert compare_reports(current, baseline, strict_fingerprints=True) == []

    def test_extra_phase_in_current_ignored(self):
        current = _report()
        current.phases.append(_phase(name="new-phase", normalized=0.0001))
        baseline = _report()
        assert compare_reports(current, baseline) == []


class TestRun:
    def test_tiny_run_is_deterministic_across_repeats(self):
        # A real (tiny) end-to-end run: repeats re-execute the identical
        # simulation, so run_phase must not raise on fingerprint checks
        # and the reported counters must match a fresh single run.
        kwargs = dict(
            num_keys=64, ops=80, cache_bytes=32 * 1024,
            strategy="adcache", seed=11, calibration=1_000_000.0,
        )
        twice = run_phase("mixed", repeats=2, **kwargs)
        once = run_phase("mixed", repeats=1, **kwargs)
        assert twice.fingerprint == once.fingerprint
        assert twice.sst_reads == once.sst_reads
        assert twice.sim_qps == pytest.approx(once.sim_qps)

    def test_run_phase_validates_inputs(self):
        with pytest.raises(ConfigError, match="unknown bench phase"):
            run_phase(
                "nope", num_keys=10, ops=10, cache_bytes=1024,
                strategy="adcache", seed=0, calibration=1.0,
            )
        with pytest.raises(ConfigError, match="repeats"):
            run_phase(
                "mixed", num_keys=10, ops=10, cache_bytes=1024,
                strategy="adcache", seed=0, calibration=1.0, repeats=0,
            )

    def test_run_perf_smoke_covers_all_phases(self):
        report, profile_text = run_perf(
            quick=True, num_keys=64, ops_per_phase=60, cache_bytes=32 * 1024,
        )
        assert [p.name for p in report.phases] == ["point", "scan", "mixed"]
        assert profile_text is None
        assert report.calibration > 0
        for phase in report.phases:
            assert phase.ops == 60
            assert phase.ops_per_sec > 0
            assert len(phase.fingerprint) == 64

    def test_run_phase_validates_batch_size(self):
        with pytest.raises(ConfigError, match="batch_size must be positive, got 0"):
            run_phase(
                "mixed", num_keys=10, ops=10, cache_bytes=1024,
                strategy="adcache", seed=0, calibration=1.0, batch_size=0,
            )
        with pytest.raises(ConfigError, match="batch_size must be positive, got -4"):
            run_phase(
                "mixed", num_keys=10, ops=10, cache_bytes=1024,
                strategy="adcache", seed=0, calibration=1.0, batch_size=-4,
            )

    def test_run_phase_batch_of_one_matches_scalar_bit_for_bit(self):
        kwargs = dict(
            num_keys=64, ops=80, cache_bytes=32 * 1024,
            strategy="adcache", seed=11, calibration=1_000_000.0,
        )
        scalar = run_phase("mixedb", **kwargs)
        batched = run_phase("mixedb", batch_size=1, **kwargs)
        assert batched.name == "mixedb"  # batch of one keeps the bare name
        assert batched.fingerprint == scalar.fingerprint
        assert batched.sst_reads == scalar.sst_reads
        assert batched.hit_rate == scalar.hit_rate

    def test_run_phase_batched_name_carries_batch_size(self):
        result = run_phase(
            "mixedb", num_keys=64, ops=80, cache_bytes=32 * 1024,
            strategy="adcache", seed=11, calibration=1_000_000.0, batch_size=8,
        )
        assert result.name == "mixedb@b8"
        assert result.ops == 80

    def test_run_perf_batch_sizes_add_the_family_with_scalar_reference(self):
        report, _ = run_perf(
            quick=True, num_keys=64, ops_per_phase=60, cache_bytes=32 * 1024,
            batch_sizes=[2],
        )
        names = [p.name for p in report.phases]
        assert names == ["point", "scan", "mixed", "mixedb", "mixedb@b2"]

    def test_run_perf_rejects_bad_batch_sizes(self):
        with pytest.raises(ConfigError, match="batch_size must be positive"):
            run_perf(
                quick=True, num_keys=64, ops_per_phase=60,
                cache_bytes=32 * 1024, batch_sizes=[8, 0],
            )

    def test_run_perf_profile_text(self):
        _, profile_text = run_perf(
            num_keys=64, ops_per_phase=40, cache_bytes=32 * 1024,
            profile_sort="tottime",
        )
        assert profile_text is not None and "function calls" in profile_text
