"""Strategy factory and harness plumbing."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    RunResult,
    estimated_hit_rate,
    run_phases,
    run_workload,
    seed_database,
)
from repro.bench.strategies import DISPLAY_NAMES, STRATEGIES, build_engine
from repro.core.adcache import AdCacheEngine
from repro.errors import ConfigError
from repro.lsm.options import LSMOptions
from repro.workloads.dynamic import dynamic_phase_specs
from repro.workloads.generator import WorkloadGenerator, point_lookup_workload
from repro.workloads.keys import key_of, value_of

OPTS = LSMOptions(memtable_entries=32, entries_per_sstable=64)


class TestStrategies:
    def test_every_strategy_builds_and_serves(self):
        for name in STRATEGIES:
            tree = seed_database(300, OPTS)
            engine = build_engine(name, tree, cache_bytes=64 * 1024, seed=1)
            assert engine.get(key_of(10)) == value_of(10), name
            assert engine.scan(key_of(20), 4)[0][0] == key_of(20), name

    def test_display_names_cover_strategies(self):
        assert set(DISPLAY_NAMES) == set(STRATEGIES)

    def test_unknown_strategy_rejected(self):
        tree = seed_database(100, OPTS)
        with pytest.raises(ConfigError):
            build_engine("bogus", tree, cache_bytes=1024)

    def test_block_strategy_has_only_block_cache(self):
        tree = seed_database(100, OPTS)
        engine = build_engine("block", tree, cache_bytes=64 * 1024)
        assert engine.block_cache is not None
        assert engine.range_cache is None and engine.kv_cache is None

    def test_adcache_strategy_fully_wired(self):
        tree = seed_database(100, OPTS)
        engine = build_engine("adcache", tree, cache_bytes=64 * 1024)
        assert isinstance(engine, AdCacheEngine)
        assert engine.freq_admission is not None

    def test_ablation_flags(self):
        tree = seed_database(100, OPTS)
        adm_only = build_engine("adcache-admission", tree, cache_bytes=64 * 1024)
        assert adm_only.config.enable_partitioning is False
        tree2 = seed_database(100, OPTS)
        part_only = build_engine("adcache-partition", tree2, cache_bytes=64 * 1024)
        assert part_only.config.enable_admission is False

    def test_range_variants_carry_their_policy(self):
        """Regression: an *empty* learned policy is falsy (it defines
        __len__), so `policy or LRUPolicy()` silently replaced it."""
        from repro.cache.cacheus import CacheusPolicy
        from repro.cache.lecar import LeCaRPolicy
        from repro.cache.lru import LRUPolicy

        expected = {
            "range": LRUPolicy,
            "range-lecar": LeCaRPolicy,
            "range-cacheus": CacheusPolicy,
        }
        for name, policy_type in expected.items():
            tree = seed_database(100, OPTS)
            engine = build_engine(name, tree, cache_bytes=64 * 1024, seed=1)
            assert isinstance(engine.range_cache._policy, policy_type), name

    def test_pretrained_strategy_frozen(self):
        tree = seed_database(100, OPTS)
        engine = build_engine("adcache-pretrained", tree, cache_bytes=64 * 1024)
        assert engine.config.online_learning is False


class TestHarness:
    def test_seed_database(self):
        tree = seed_database(500, OPTS)
        assert tree.get(key_of(250)) == value_of(250)
        assert tree.num_levels >= 2

    def test_run_workload_result_fields(self):
        tree = seed_database(500, OPTS)
        engine = build_engine("block", tree, cache_bytes=32 * 1024, seed=1)
        gen = WorkloadGenerator(point_lookup_workload(500), seed=2)
        result = run_workload(engine, gen, num_ops=300, name="smoke")
        assert result.ops == 300
        assert 0.0 <= result.hit_rate <= 1.0
        assert result.sst_reads >= 0
        assert result.qps > 0
        assert result.io_estimate > 0

    def test_warmup_excluded_from_metrics(self):
        tree = seed_database(500, OPTS)
        engine = build_engine("block", tree, cache_bytes=256 * 1024, seed=1)
        gen = WorkloadGenerator(point_lookup_workload(500), seed=2)
        result = run_workload(engine, gen, num_ops=200, warmup_ops=400, name="w")
        assert result.ops == 200
        # Warm cache: measured hit rate should beat an unwarmed run.
        tree2 = seed_database(500, OPTS)
        engine2 = build_engine("block", tree2, cache_bytes=256 * 1024, seed=1)
        gen2 = WorkloadGenerator(point_lookup_workload(500), seed=2)
        cold = run_workload(engine2, gen2, num_ops=200, name="c")
        assert result.hit_rate >= cold.hit_rate

    def test_workload_as_explicit_op_list(self):
        from repro.workloads.generator import Operation

        tree = seed_database(100, OPTS)
        engine = build_engine("block", tree, cache_bytes=32 * 1024)
        ops = [Operation("get", key_of(i)) for i in range(10)]
        result = run_workload(engine, ops, name="list")
        assert result.ops == 10

    def test_generator_requires_num_ops(self):
        tree = seed_database(100, OPTS)
        engine = build_engine("block", tree, cache_bytes=32 * 1024)
        gen = WorkloadGenerator(point_lookup_workload(100), seed=1)
        with pytest.raises(ValueError):
            run_workload(engine, gen)

    def test_estimated_hit_rate_no_cache_is_zero_ish(self):
        """With no cache at all, measured I/O should match the estimate
        for point lookups (h ~ 0): the formula's accuracy check."""
        from repro.core.engine import KVEngine

        tree = seed_database(2000, OPTS)
        engine = KVEngine(tree)  # no caches
        gen = WorkloadGenerator(point_lookup_workload(2000), seed=3)
        run_workload(engine, gen, num_ops=800, name="nocache")
        h, io_est, io_miss = estimated_hit_rate(engine)
        assert abs(h) < 0.15  # estimate within 15% of reality

    def test_run_phases_carries_state(self):
        tree = seed_database(1000, OPTS)
        engine = build_engine("block", tree, cache_bytes=128 * 1024, seed=1)
        phases = dynamic_phase_specs(1000, phases="CD")
        results = run_phases(engine, phases, ops_per_phase=300, seed=4)
        assert [r.name for r in results] == ["C", "D"]
        assert all(r.ops == 300 for r in results)
