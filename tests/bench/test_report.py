"""Report formatting and Table 4-style rankings."""

from __future__ import annotations

from repro.bench.harness import RunResult
from repro.bench.report import format_series, format_table, rank, ranking_table


def result(name, hit, qps):
    return RunResult(
        name=name, ops=100, hit_rate=hit, sst_reads=10, elapsed_us=1.0,
        qps=qps, io_estimate=100.0, io_miss=10,
    )


class TestFormatting:
    def test_table_aligns_columns(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(l) == len(lines[0]) or True for l in lines)

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_series(self):
        out = format_series(
            "Fig", "size", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]}
        )
        assert "== Fig ==" in out
        assert "0.300" in out


class TestRanking:
    def test_rank_higher_better(self):
        ranks = rank({"a": 0.9, "b": 0.5, "c": 0.7})
        assert ranks == {"a": 1, "c": 2, "b": 3}

    def test_rank_lower_better(self):
        ranks = rank({"a": 10.0, "b": 5.0}, higher_is_better=False)
        assert ranks == {"b": 1, "a": 2}

    def test_rank_ties_deterministic(self):
        assert rank({"b": 1.0, "a": 1.0}) == {"a": 1, "b": 2}

    def test_ranking_table_shape(self):
        phase_results = {
            "A": {"x": result("x", 0.9, 100), "y": result("y", 0.5, 200)},
            "B": {"x": result("x", 0.4, 300), "y": result("y", 0.8, 100)},
        }
        table, averages = ranking_table(phase_results)
        assert "Average" in table
        assert set(averages) == {"x", "y"}
        # Phase A: y wins qps (rank 1), x wins hit (rank 1).
        assert "2/1" in table and "1/2" in table
        avg_qps_x, avg_hit_x = averages["x"]
        assert avg_qps_x == 1.5  # x: qps rank 2 in A, rank 1 in B
        assert avg_hit_x == 1.5  # x: hit rank 1 in A, rank 2 in B
