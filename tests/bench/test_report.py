"""Report formatting and Table 4-style rankings."""

from __future__ import annotations

from repro.bench.harness import RunResult
import pytest

from repro.bench.report import (
    LatencyHistogram,
    format_series,
    format_table,
    latency_table,
    merged_histogram,
    percentile,
    rank,
    ranking_table,
)
from repro.errors import ConfigError


def result(name, hit, qps):
    return RunResult(
        name=name, ops=100, hit_rate=hit, sst_reads=10, elapsed_us=1.0,
        qps=qps, io_estimate=100.0, io_miss=10,
    )


class TestFormatting:
    def test_table_aligns_columns(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(l) == len(lines[0]) or True for l in lines)

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_series(self):
        out = format_series(
            "Fig", "size", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]}
        )
        assert "== Fig ==" in out
        assert "0.300" in out


class TestRanking:
    def test_rank_higher_better(self):
        ranks = rank({"a": 0.9, "b": 0.5, "c": 0.7})
        assert ranks == {"a": 1, "c": 2, "b": 3}

    def test_rank_lower_better(self):
        ranks = rank({"a": 10.0, "b": 5.0}, higher_is_better=False)
        assert ranks == {"b": 1, "a": 2}

    def test_rank_ties_deterministic(self):
        assert rank({"b": 1.0, "a": 1.0}) == {"a": 1, "b": 2}

    def test_ranking_table_shape(self):
        phase_results = {
            "A": {"x": result("x", 0.9, 100), "y": result("y", 0.5, 200)},
            "B": {"x": result("x", 0.4, 300), "y": result("y", 0.8, 100)},
        }
        table, averages = ranking_table(phase_results)
        assert "Average" in table
        assert set(averages) == {"x", "y"}
        # Phase A: y wins qps (rank 1), x wins hit (rank 1).
        assert "2/1" in table and "1/2" in table
        avg_qps_x, avg_hit_x = averages["x"]
        assert avg_qps_x == 1.5  # x: qps rank 2 in A, rank 1 in B
        assert avg_hit_x == 1.5  # x: hit rank 1 in A, rank 2 in B


class TestPercentile:
    def test_nearest_rank_semantics(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0.0) == 10.0
        assert percentile(samples, 0.25) == 10.0
        assert percentile(samples, 0.5) == 20.0
        assert percentile(samples, 0.99) == 40.0
        assert percentile(samples, 1.0) == 40.0

    def test_empty_and_validation(self):
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ConfigError):
            percentile([1.0], 1.5)

    def test_pure_function_of_multiset(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == percentile(
            [2.0, 3.0, 1.0], 0.5
        )


class TestLatencyHistogram:
    def test_quantile_is_bucket_upper_bound(self):
        h = LatencyHistogram(growth=2.0, min_us=1.0)
        for us in (1.0, 3.0, 100.0):
            h.record(us)
        # 3.0 falls in the bucket bounded above by 4.0; the reported
        # median is that bound — a deterministic over-estimate.
        assert h.quantile(0.5) == 4.0
        assert h.p50 == 4.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 128.0
        assert h.count == 3
        assert h.max_us == 100.0
        assert h.mean_us == pytest.approx(104.0 / 3)

    def test_empty_histogram(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.p50 == 0.0 and h.p99 == 0.0
        assert h.mean_us == 0.0
        assert h.fingerprint() == ()

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(growth=1.0)
        with pytest.raises(ConfigError):
            LatencyHistogram(min_us=0.0)
        h = LatencyHistogram()
        with pytest.raises(ConfigError):
            h.record(-1.0)
        with pytest.raises(ConfigError):
            h.record(float("inf"))
        with pytest.raises(ConfigError):
            h.quantile(2.0)

    def test_merge_equals_single_stream(self):
        a, b, both = (LatencyHistogram() for _ in range(3))
        for i, us in enumerate([5.0, 17.0, 250.0, 3.0, 99.0, 1200.0]):
            (a if i % 2 == 0 else b).record(us)
            both.record(us)
        a.merge(b)
        assert a.fingerprint() == both.fingerprint()
        assert a.count == both.count
        assert a.total_us == pytest.approx(both.total_us)
        assert a.max_us == both.max_us
        assert a.p99 == both.p99

    def test_merge_geometry_mismatch_rejected(self):
        a = LatencyHistogram(growth=1.15)
        b = LatencyHistogram(growth=2.0)
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_fingerprint_reflects_contents(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(10.0)
        b.record(10.0)
        assert a.fingerprint() == b.fingerprint()
        b.record(5000.0)
        assert a.fingerprint() != b.fingerprint()

    def test_merged_histogram_helper(self):
        parts = []
        for base in (10.0, 100.0, 1000.0):
            h = LatencyHistogram()
            h.record(base)
            parts.append(h)
        merged = merged_histogram(parts)
        assert merged.count == 3
        assert merged.max_us == 1000.0
        empty = merged_histogram([])
        assert empty.count == 0

    def test_latency_table_renders(self):
        h = LatencyHistogram()
        for us in (10.0, 20.0, 30.0):
            h.record(us)
        table = latency_table({"t0": h}, label="tenant")
        assert "tenant" in table and "p99 us" in table and "t0" in table
