#!/usr/bin/env python
"""Quickstart: an AdCache-managed LSM key-value store in ~40 lines.

Creates a small database, serves point lookups and range scans through
the full AdCache stack (block cache + range cache + admission control +
RL controller), and prints what the controller learned.

Run:  python examples/quickstart.py
"""

from repro import AdCacheConfig, AdCacheEngine, seed_database
from repro.workloads.keys import key_of, value_of


def main() -> None:
    # A database of 20k keys (24 B keys, 1000 B logical values),
    # bulk-loaded into a realistic multi-level LSM shape.
    tree = seed_database(num_keys=20_000)
    print(f"database: {tree.levels.total_entries():,} entries, "
          f"L={tree.num_levels} levels, {tree.num_sorted_runs} sorted runs")

    # AdCache with a 2 MB budget, initially split 50/50 between the
    # block cache and the range cache.
    engine = AdCacheEngine(
        tree, AdCacheConfig(total_cache_bytes=2 << 20, window_size=500)
    )

    # Reads and writes go through the ordinary KV API.
    engine.put(key_of(42), "hello adcache")
    assert engine.get(key_of(42)) == "hello adcache"
    neighborhood = engine.scan(key_of(40), length=5)
    print("scan(40, 5):", [(k[-4:], v[:12]) for k, v in neighborhood])

    # Drive a skewed point workload so the controller has windows to
    # learn from; then inspect what it decided.
    from repro.workloads.generator import WorkloadGenerator, point_lookup_workload
    from repro.bench.harness import apply_operation

    generator = WorkloadGenerator(point_lookup_workload(20_000), seed=1)
    for op in generator.ops(5_000):
        apply_operation(engine, op)

    last = engine.controller.history[-1]
    print(f"\nafter {len(engine.windows)} control windows:")
    print(f"  range/block boundary : {last.range_ratio:.2f} of budget to range cache")
    print(f"  point admission bar  : {last.point_threshold:.4f}")
    print(f"  scan admission (a,b) : ({last.scan_a:.1f}, {last.scan_b:.2f})")
    print(f"  smoothed hit rate    : {last.h_smoothed:.3f}")
    print(f"  SST block reads      : {engine.sst_reads_total:,}")


if __name__ == "__main__":
    main()
