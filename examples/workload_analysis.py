#!/usr/bin/env python
"""Workload analysis: profile a trace and predict cache behaviour.

Shows the analysis toolkit end to end:

1. generate a workload, record it to a trace file (the paper's
   pretraining log-collection path),
2. characterize it (mix, scan lengths, skew) from the trace alone,
3. compute its Mattson miss-ratio curve — the LRU hit rate at *every*
   cache size from a single pass — and check the prediction against a
   real cache simulation at one size.

Run:  python examples/workload_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analysis.characterize import characterize, format_profile
from repro.analysis.reuse import mattson_hit_rates, miss_ratio_curve
from repro.cache.base import BudgetedCache
from repro.cache.lru import LRUPolicy
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.trace import load_trace, record_trace

NUM_KEYS = 10_000


def main() -> None:
    # 1. Generate and record a mixed workload.
    spec = WorkloadSpec(
        num_keys=NUM_KEYS,
        get_ratio=0.6,
        short_scan_ratio=0.2,
        write_ratio=0.2,
        point_skew=0.95,
        name="analysis_demo",
    )
    ops = list(WorkloadGenerator(spec, seed=11).ops(20_000))
    trace_path = Path(tempfile.gettempdir()) / "analysis_demo.trace"
    record_trace(ops, trace_path)
    print(f"recorded {len(ops):,} operations to {trace_path}\n")

    # 2. Characterize from the trace file.
    profile = characterize(load_trace(trace_path))
    print(format_profile(profile))

    # 3. Miss-ratio curve over the point-lookup key stream.
    point_keys = [op.key for op in ops if op.kind == "get"]
    print("\nLRU miss-ratio curve (point lookups, Mattson single-pass):")
    for size, miss in miss_ratio_curve(point_keys, max_size=2000, num_points=8):
        bar = "#" * int((1 - miss) * 40)
        print(f"  {size:>5} entries: miss {miss:.3f} |{bar:<40}|")

    # Cross-check one point against a real LRU cache.
    capacity = 500
    predicted = mattson_hit_rates(point_keys, [capacity])[capacity]
    cache = BudgetedCache(capacity, LRUPolicy(), lambda k, v: 1)
    hits = 0
    for key in point_keys:
        if cache.get(key) is not None:
            hits += 1
        else:
            cache.put(key, "v")
    simulated = hits / len(point_keys)
    print(
        f"\nat {capacity} entries: predicted hit rate {predicted:.4f}, "
        f"simulated {simulated:.4f} (exact match expected)"
    )


if __name__ == "__main__":
    main()
