#!/usr/bin/env python
"""Pretraining workflow: train offline, ship the model, deploy warm.

Reproduces Section 3.6's deployment story end to end:

1. build a supervised dataset of (workload-state, expert-action) pairs,
2. pretrain the actor and save it to disk (``.npz``),
3. load the weights into a fresh agent on a "different machine" and
   deploy it — frozen (inference-only) and with online fine-tuning,
4. compare early-window hit rates against a cold-started agent.

Run:  python examples/pretraining.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.bench.harness import apply_operation, seed_database
from repro.bench.report import format_table
from repro.core.adcache import ACTION_DIM, AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.lsm.options import LSMOptions
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import STATE_DIM
from repro.rl.pretrain import generate_supervised_dataset, pretrain_actor_supervised
from repro.workloads.generator import WorkloadGenerator, short_scan_workload

NUM_KEYS = 5_000
CACHE_BYTES = 512 * 1024
OPS = 10_000


def make_engine(agent=None, online=True) -> AdCacheEngine:
    opts = LSMOptions(memtable_entries=64, entries_per_sstable=128)
    tree = seed_database(NUM_KEYS, opts)
    config = AdCacheConfig(
        total_cache_bytes=CACHE_BYTES,
        window_size=250,
        hidden_dim=64,
        online_learning=online,
        seed=11,
    )
    return AdCacheEngine(tree, config, agent=agent)


def early_hit_rate(engine) -> float:
    generator = WorkloadGenerator(short_scan_workload(NUM_KEYS), seed=5)
    for op in generator.ops(OPS):
        apply_operation(engine, op)
    # "Early" = the first quarter of control windows after warmup.
    h = [r.h_estimate for r in engine.controller.history]
    quarter = max(3, len(h) // 4)
    return float(np.mean(h[2 : 2 + quarter]))


def main() -> None:
    # 1-2: pretrain on synthetic expert labels and save.
    agent = ActorCriticAgent(STATE_DIM, ACTION_DIM, hidden_dim=64, seed=3)
    dataset = generate_supervised_dataset(512, seed=4)
    losses = pretrain_actor_supervised(agent, dataset, epochs=40, lr=2e-3)
    print(f"pretraining loss: {losses[0]:.4f} -> {losses[-1]:.4f}")
    model_path = Path(tempfile.gettempdir()) / "adcache_actor.npz"
    agent.save(str(model_path))
    print(f"saved pretrained model to {model_path} "
          f"({model_path.stat().st_size / 1024:.0f} KB)")

    # 3: "another machine" loads the weights fresh.
    shipped = ActorCriticAgent(STATE_DIM, ACTION_DIM, hidden_dim=64, seed=99)
    shipped.load(str(model_path))
    shipped_frozen = ActorCriticAgent(STATE_DIM, ACTION_DIM, hidden_dim=64, seed=98)
    shipped_frozen.load(str(model_path))

    # 4: early-phase comparison on a short-scan workload.
    rows = []
    for label, engine in (
        ("cold start (online learning)", make_engine()),
        ("pretrained + online fine-tuning", make_engine(agent=shipped)),
        ("pretrained, frozen", make_engine(agent=shipped_frozen, online=False)),
    ):
        rows.append([label, f"{early_hit_rate(engine):.3f}"])
    print()
    print(format_table(["deployment", "early-window hit rate"], rows))


if __name__ == "__main__":
    main()
