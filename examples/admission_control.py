#!/usr/bin/env python
"""Admission control under a hostile mix: hot points + long scan noise.

A cache-polluting workload: a small set of hot keys is read constantly
while infrequent 64-entry scans sweep random cold ranges.  Without
admission control every scan evicts ~64 hot entries; with the paper's
partial admission (cache only ``b*(l-a)`` entries of a long scan) and
frequency gating, the hot set survives.

Compares three configurations at the same cache size and prints how
many disk reads the hot keys cost in each.

Run:  python examples/admission_control.py
"""

import numpy as np

from repro.bench.harness import seed_database
from repro.bench.report import format_table
from repro.bench.strategies import build_engine
from repro.core.adcache import AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.lsm.options import LSMOptions
from repro.workloads.keys import key_of

NUM_KEYS = 5_000
CACHE_BYTES = 128 * 1024  # 128 entries' worth
HOT_KEYS = [key_of(i * 37) for i in range(64)]
ROUNDS = 120
SCANS_PER_ROUND = 3  # 3 x 64 cold entries would flush the hot set


def pollute_and_measure(engine, rng) -> dict:
    """Alternate hot-point reads with cold long scans; count the damage."""
    for key in HOT_KEYS * 3:  # warm the hot set
        engine.get(key)
    reads_before = engine.tree.disk.block_reads_total
    hot_misses = 0
    for _ in range(ROUNDS):
        for key in HOT_KEYS:
            before = engine.tree.disk.block_reads_total
            engine.get(key)
            if engine.tree.disk.block_reads_total > before:
                hot_misses += 1
        for _ in range(SCANS_PER_ROUND):
            start = int(rng.integers(0, NUM_KEYS - 64))
            engine.scan(key_of(start), 64)  # cold noise
    return {
        "hot_misses": hot_misses,
        "disk_reads": engine.tree.disk.block_reads_total - reads_before,
    }


def build(config_name: str):
    opts = LSMOptions(memtable_entries=64, entries_per_sstable=128)
    tree = seed_database(NUM_KEYS, opts)
    if config_name == "range (no admission)":
        return build_engine("range", tree, CACHE_BYTES, seed=1)
    config = AdCacheConfig(
        total_cache_bytes=CACHE_BYTES,
        initial_range_ratio=1.0,        # isolate the admission effect
        enable_partitioning=False,
        online_learning=False,          # hold parameters fixed
        window_size=10**9,
        hidden_dim=16,
        seed=1,
    )
    engine = AdCacheEngine(tree, config)
    if config_name == "admission (a=16, b=0.25)":
        engine.scan_admission.set_params(16.0, 0.25)
    else:  # strict: admit nothing from long scans, gate cold points
        engine.scan_admission.set_params(16.0, 0.0)
        engine.freq_admission.set_threshold(0.005)
    return engine


def main() -> None:
    rng = np.random.default_rng(7)
    rows = []
    for name in (
        "range (no admission)",
        "admission (a=16, b=0.25)",
        "admission (a=16, b=0, freq gate)",
    ):
        engine = build(name)
        out = pollute_and_measure(engine, np.random.default_rng(7))
        total_hot = ROUNDS * len(HOT_KEYS)
        rows.append(
            [
                name,
                f"{out['hot_misses']}/{total_hot}",
                f"{out['hot_misses'] / total_hot * 100:.1f}%",
                f"{out['disk_reads']:,}",
            ]
        )
    print(format_table(
        ["configuration", "hot-key misses", "miss rate", "disk block reads"], rows
    ))
    print(
        "\nPartial admission keeps long-scan noise from evicting the hot set;"
        "\nthe frequency gate additionally blocks one-off fills."
    )


if __name__ == "__main__":
    main()
