#!/usr/bin/env python
"""Adaptivity demo: AdCache vs static caches across workload phases.

Replays a shortened version of the paper's dynamic workload (Table 3
phases C -> D -> F: read-heavy, then mixed ingestion, then
write-dominated) against three engines sharing nothing but the seed:

* RocksDB-style block cache (static),
* Range Cache with LRU (static),
* AdCache (adaptive partitioning + admission + RL).

Prints per-phase estimated hit rate and simulated throughput, plus the
boundary AdCache chose in each phase.

Run:  python examples/dynamic_workload.py
"""

from repro.bench.harness import run_phases, seed_database
from repro.bench.report import format_table
from repro.bench.strategies import build_engine
from repro.lsm.options import LSMOptions
from repro.workloads.dynamic import dynamic_phase_specs

NUM_KEYS = 6_000
CACHE_BYTES = 768 * 1024
OPS_PER_PHASE = 5_000


def main() -> None:
    opts = LSMOptions(memtable_entries=64, entries_per_sstable=128)
    phases = dynamic_phase_specs(NUM_KEYS, phases="CDF")

    rows = []
    adcache_boundaries = {}
    for strategy in ("block", "range", "adcache"):
        tree = seed_database(NUM_KEYS, opts)
        engine = build_engine(strategy, tree, CACHE_BYTES, seed=3)
        if strategy == "adcache":
            engine.window_size = 250
        results = run_phases(engine, phases, ops_per_phase=OPS_PER_PHASE, seed=9)
        for result in results:
            rows.append(
                [
                    result.name,
                    strategy,
                    f"{result.hit_rate:.3f}",
                    f"{result.qps:,.0f}",
                    f"{result.sst_reads:,}",
                ]
            )
        if strategy == "adcache":
            history = engine.controller.history
            per_phase = len(history) // len(phases)
            for i, (name, _) in enumerate(phases):
                window = history[min(len(history) - 1, (i + 1) * per_phase - 1)]
                adcache_boundaries[name] = window.range_ratio

    print(format_table(["phase", "strategy", "hit rate", "QPS", "SST reads"], rows))
    print("\nAdCache's learned range-cache share at each phase's end:")
    for name, ratio in adcache_boundaries.items():
        bar = "#" * int(ratio * 30)
        print(f"  phase {name}: {ratio:4.2f} |{bar:<30}|")


if __name__ == "__main__":
    main()
