#!/usr/bin/env python
"""Observability demo: record a run, print the controller's trajectory.

Attaches an :class:`~repro.obs.recorder.ObsRecorder` to an AdCache
engine, runs a short mixed workload, and then works entirely from the
*exported* artifacts — the same metrics/events/audit JSONL files that
``repro run --obs-dir`` writes — to show:

* the per-window split/reward trajectory the controller walked,
* the structural event stream (flushes, compactions, boundary moves),
* that the decision-audit log replays bit-for-bit offline: a fresh
  controller rebuilt from the log's header, fed the recorded windows,
  reproduces every applied action exactly.

Run:  python examples/observability.py
"""

import tempfile

from repro.bench.harness import seed_database
from repro.bench.strategies import build_engine
from repro.obs import names as N
from repro.obs.audit import load_audit_log, verify_replay
from repro.obs.recorder import ObsRecorder
from repro.obs.report import render_report
from repro.obs.schema import validate_export
from repro.workloads.generator import WorkloadGenerator, balanced_workload

NUM_KEYS = 4_000
CACHE_BYTES = 512 * 1024
OPS = 8_000


def main() -> None:
    tree = seed_database(NUM_KEYS)
    engine = build_engine("adcache", tree, CACHE_BYTES, seed=3)
    recorder = ObsRecorder()
    engine.attach_recorder(recorder)

    from repro.bench.harness import apply_operation

    generator = WorkloadGenerator(balanced_workload(NUM_KEYS), seed=9)
    for op in generator.ops(OPS):
        apply_operation(engine, op)
    engine.flush_window()

    with tempfile.TemporaryDirectory() as obs_dir:
        recorder.export(obs_dir)
        problems = validate_export(obs_dir)
        print(f"export schema check: {'OK' if not problems else problems}")
        print()
        print(render_report(obs_dir, max_rows=10))
        print()

        header, records = load_audit_log(f"{obs_dir}/audit.jsonl")
        mismatches = verify_replay(header, records)
        print(
            f"audit replay: {len(records)} decisions, "
            f"{len(mismatches)} mismatches "
            f"({'bit-for-bit' if not mismatches else 'DIVERGED'})"
        )

    totals = recorder.metrics
    print(
        f"lifetime: ops={totals.counter_total(N.WINDOW_OPS):,} "
        f"io_miss={totals.counter_total(N.WINDOW_IO_MISS):,} "
        f"flushes={totals.counter_total(N.LSM_FLUSHES)} "
        f"compactions={totals.counter_total(N.LSM_COMPACTIONS)} "
        f"decisions={totals.counter_total(N.CTRL_DECISIONS)}"
    )


if __name__ == "__main__":
    main()
